let to_string ~name (t : Rctree.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "*D_NET %s\n*CAP\n" name);
  Array.iter
    (fun (nd : Rctree.node) ->
      Buffer.add_string buf (Printf.sprintf "%s %.12g\n" nd.name (nd.cap *. 1e15)))
    t.nodes;
  Buffer.add_string buf "*RES\n";
  Array.iteri
    (fun i (nd : Rctree.node) ->
      if i > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %s %.12g\n" t.nodes.(nd.parent).name nd.name nd.res))
    t.nodes;
  Buffer.add_string buf "*TAP";
  Array.iter
    (fun tap -> Buffer.add_string buf (Printf.sprintf " %s" t.nodes.(tap).name))
    t.taps;
  Buffer.add_string buf "\n*END\n";
  Buffer.contents buf

type section = In_none | In_cap | In_res

let of_string text =
  let lines = String.split_on_char '\n' text in
  let nets = ref [] in
  let current_name = ref None in
  let caps : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let edges = ref [] (* (parent, node, res), in file order *) in
  let taps = ref [] in
  let section = ref In_none in
  let fail lineno msg = failwith (Printf.sprintf "Spef: line %d: %s" lineno msg) in
  let finish lineno =
    match !current_name with
    | None -> ()
    | Some name ->
      (* Root: the unique cap node that is never a child of an edge. *)
      let children = List.map (fun (_, c, _) -> c) !edges in
      let root =
        let candidates =
          Hashtbl.fold
            (fun nd _ acc -> if List.mem nd children then acc else nd :: acc)
            caps []
        in
        match candidates with
        | [ r ] -> r
        | [] -> fail lineno "no root node (cycle?)"
        | _ -> fail lineno "multiple root candidates"
      in
      let cap_of nd =
        match Hashtbl.find_opt caps nd with
        | Some c -> c *. 1e-15
        | None -> fail lineno (Printf.sprintf "node %s has no *CAP entry" nd)
      in
      (* Breadth-first ordering guarantees parent-before-child. *)
      let index = Hashtbl.create 16 in
      let nodes = ref [ { Rctree.name = root; parent = -1; res = 0.0; cap = cap_of root } ] in
      Hashtbl.replace index root 0;
      let count = ref 1 in
      let remaining = ref !edges in
      let progress = ref true in
      while !remaining <> [] && !progress do
        progress := false;
        let still = ref [] in
        List.iter
          (fun (p, c, r) ->
            match Hashtbl.find_opt index p with
            | Some pi ->
              Hashtbl.replace index c !count;
              nodes := { Rctree.name = c; parent = pi; res = r; cap = cap_of c } :: !nodes;
              incr count;
              progress := true
            | None -> still := (p, c, r) :: !still)
          !remaining;
        remaining := List.rev !still
      done;
      if !remaining <> [] then fail lineno "disconnected *RES edges";
      let node_array = Array.of_list (List.rev !nodes) in
      let tap_idx =
        List.rev_map
          (fun nd ->
            match Hashtbl.find_opt index nd with
            | Some i -> i
            | None -> fail lineno (Printf.sprintf "tap %s is not a node" nd))
          !taps
      in
      let tree = Rctree.create ~nodes:node_array ~taps:(Array.of_list tap_idx) in
      nets := (name, tree) :: !nets;
      current_name := None;
      Hashtbl.reset caps;
      edges := [];
      taps := [];
      section := In_none
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || String.length line >= 2 && String.sub line 0 2 = "//" then ()
      else begin
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        match words with
        | "*D_NET" :: name :: _ ->
          if !current_name <> None then fail lineno "nested *D_NET";
          current_name := Some name
        | [ "*CAP" ] -> section := In_cap
        | [ "*RES" ] -> section := In_res
        | "*TAP" :: rest -> taps := !taps @ rest
        | [ "*END" ] -> finish lineno
        | [ node; value ] when !section = In_cap ->
          (try Hashtbl.replace caps node (float_of_string value)
           with _ -> fail lineno "bad capacitance value")
        | [ parent; node; value ] when !section = In_res ->
          (try edges := !edges @ [ (parent, node, float_of_string value) ]
           with _ -> fail lineno "bad resistance value")
        | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)
      end)
    lines;
  if !current_name <> None then failwith "Spef: missing *END";
  List.rev !nets

let write_file path nets =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun (name, tree) -> output_string oc (to_string ~name tree)) nets)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
