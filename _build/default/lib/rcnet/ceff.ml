let effective ~driver_resistance (t : Rctree.t) =
  if driver_resistance <= 0.0 then
    invalid_arg "Ceff.effective: driver resistance must be positive";
  (* Path resistance from the root to every node, then weight each node's
     capacitance by how visible it is from the driver during the switching
     window.  The 0.5 factor calibrates the single-pole approximation to
     the 50% crossing point. *)
  let n = Rctree.n_nodes t in
  let path_res = Array.make n 0.0 in
  for i = 1 to n - 1 do
    let nd = t.Rctree.nodes.(i) in
    path_res.(i) <- path_res.(nd.Rctree.parent) +. nd.Rctree.res
  done;
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let shield = 1.0 /. (1.0 +. (0.5 *. path_res.(i) /. driver_resistance)) in
    acc := !acc +. (t.Rctree.nodes.(i).Rctree.cap *. shield)
  done;
  !acc

let shielding_ratio ~driver_resistance t =
  let total = Rctree.total_cap t in
  if total <= 0.0 then 1.0 else effective ~driver_resistance t /. total

let driver_resistance_estimate ~vdd ~drive_current =
  if drive_current <= 0.0 then infinity else vdd /. (2.0 *. drive_current)
