(** Parametric circuit generators.

    These stand in for the paper's proprietary benchmark netlists (ISCAS85
    mapped through Design Compiler, PULPino functional units): the
    arithmetic generators produce real adders/subtractors/multipliers/
    dividers whose function is verified by {!Netlist.eval}, and
    {!random_logic} produces ISCAS85-scale random logic cones with a
    controlled cell count and logic depth. *)

val ripple_adder : bits:int -> Netlist.t
(** n-bit ripple-carry adder; inputs a0.., b0.., cin; outputs s0.., cout. *)

val kogge_stone_adder : bits:int -> Netlist.t
(** Parallel-prefix adder (no carry-in): log-depth, the PULPino-ADD
    stand-in. *)

val subtractor : bits:int -> Netlist.t
(** a − b via Kogge-Stone with inverted b and carry-in 1; outputs the
    difference and a "no-borrow" flag. *)

val array_multiplier : bits:int -> Netlist.t
(** n×n → 2n array multiplier built from AND partial products and
    ripple-carry accumulation rows. *)

val array_divider : dividend_bits:int -> divisor_bits:int -> Netlist.t
(** Restoring array divider: quotient (dividend_bits wide) and remainder
    (divisor_bits wide) of an unsigned division.  Rows use Kogge-Stone
    subtraction so depth grows as rows·log(width), not rows·width. *)

val random_logic :
  name:string ->
  n_inputs:int ->
  n_gates:int ->
  depth:int ->
  seed:int ->
  Netlist.t
(** Random DAG of standard cells arranged in [depth] levels with a
    guaranteed full-depth spine; cell kinds follow a synthesis-like mix
    (NAND/NOR-heavy).  Deterministic in [seed]. *)

val size_for_fanout : Netlist.t -> Netlist.t
(** Re-size every gate's drive strength from its fanout count (≤2 → ×2,
    ≤4 → ×4, else ×8) — a crude stand-in for sizing during synthesis
    that keeps per-stage effective fanout near FO4 (so slews stay in the
    characterised range), and the source of the strength diversity the
    wire model calibrates against. *)
