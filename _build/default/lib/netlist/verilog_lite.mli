(** Structural-Verilog-style text exchange for netlists.

    The emitted subset uses one module per netlist, positional instance
    connections with the output pin first — e.g.

    {v
    module c432 (i0, i1, ..., n42, n43);
      input i0, i1;
      output n42, n43;
      wire n2, n3;
      NAND2X1 g0 (n2, i0, i1);
      INVX2 g1 (n3, n2);
    endmodule
    v}

    The parser accepts exactly what {!to_string} produces (plus blank
    lines and [//] comments) — enough for fixtures and round-tripping,
    not a general Verilog frontend. *)

val to_string : Netlist.t -> string
val of_string : string -> Netlist.t
(** @raise Failure with a line diagnostic on malformed input. *)

val write_file : string -> Netlist.t -> unit
val read_file : string -> Netlist.t
