(** Gate-level netlist intermediate representation.

    A netlist is a DAG of standard-cell instances connected by nets.
    Nets are integers; every net has exactly one driver (a gate output or
    a primary input) and any number of sinks.  The representation is
    deliberately flat and array-based: the STA engine and the Monte-Carlo
    path simulator traverse it millions of times. *)

type gate = {
  g_name : string;
  cell : Nsigma_liberty.Cell.t;
  inputs : int array;  (** input net per pin, pin order A, B, C *)
  output : int;  (** driven net *)
}

type t = {
  name : string;
  n_nets : int;
  primary_inputs : int array;
  primary_outputs : int array;
  gates : gate array;
  net_names : string array;  (** length [n_nets] *)
}

val validate : t -> unit
(** Structural checks: single driver per net, arities match the cells,
    references in range, acyclic. @raise Invalid_argument on violation. *)

val n_cells : t -> int

val driver_of : t -> int array
(** Per net: index of the driving gate, or -1 for primary inputs. *)

val fanouts_of : t -> (int * int) list array
(** Per net: sinks as (gate index, pin index) pairs, plus (-1, k) for the
    k-th primary output it feeds. *)

val topo_order : t -> int array
(** Gate indices in topological (driver before sink) order.
    @raise Invalid_argument if the netlist is cyclic. *)

val logic_depth : t -> int
(** Length (in gates) of the longest combinational path. *)

val eval : t -> bool array -> bool array
(** Functional simulation: map primary-input values (in
    [primary_inputs] order) to primary-output values.  Exercised by the
    generator tests to prove the arithmetic circuits actually add,
    subtract, multiply and divide. *)

val stats : t -> string
(** One-line summary: #nets, #cells, depth. *)
