module Cell = Nsigma_liberty.Cell
module Rng = Nsigma_stats.Rng
module B = Builder

let ripple_adder ~bits =
  if bits <= 0 then invalid_arg "Generators.ripple_adder: bits <= 0";
  let b = B.create ~name:(Printf.sprintf "radd%d" bits) in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let sum, cout = B.full_adder b ~a:a.(i) ~b:bb.(i) ~cin:!carry in
    B.output b sum;
    carry := cout
  done;
  B.output b !carry;
  B.finish b

(* Shared Kogge-Stone core: given per-bit propagate/generate nets (with
   any carry-in already folded into bit 0's generate), wire the prefix
   network and return the carry-into-bit array c.(i) for i in 1..bits and
   the final carry-out. *)
let kogge_stone_prefix b ~p ~g =
  let bits = Array.length p in
  let gs = Array.copy g and ps = Array.copy p in
  let d = ref 1 in
  while !d < bits do
    let gs' = Array.copy gs and ps' = Array.copy ps in
    for i = !d to bits - 1 do
      gs'.(i) <- B.or2 b gs.(i) (B.and2 b ps.(i) gs.(i - !d));
      ps'.(i) <- B.and2 b ps.(i) ps.(i - !d)
    done;
    Array.blit gs' 0 gs 0 bits;
    Array.blit ps' 0 ps 0 bits;
    d := !d * 2
  done;
  gs

let kogge_stone_adder ~bits =
  if bits <= 0 then invalid_arg "Generators.kogge_stone_adder: bits <= 0";
  let b = B.create ~name:(Printf.sprintf "ksadd%d" bits) in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let p = Array.init bits (fun i -> B.xor2 b a.(i) bb.(i)) in
  let g = Array.init bits (fun i -> B.and2 b a.(i) bb.(i)) in
  let carries = kogge_stone_prefix b ~p ~g in
  B.output b p.(0);
  for i = 1 to bits - 1 do
    B.output b (B.xor2 b p.(i) carries.(i - 1))
  done;
  B.output b carries.(bits - 1);
  B.finish b

(* Build a − minus on pre-allocated nets inside an existing builder:
   returns (difference bits, no-borrow flag).  [minus_inverted] must
   already hold ¬minus. *)
let subtract_ks b ~a ~minus_inverted =
  let bits = Array.length a in
  let p = Array.init bits (fun i -> B.xor2 b a.(i) minus_inverted.(i)) in
  let g = Array.init bits (fun i -> B.and2 b a.(i) minus_inverted.(i)) in
  (* Fold the +1 carry-in into bit 0: g0' = g0 ∨ (p0 ∧ 1) = g0 ∨ p0. *)
  let g = Array.copy g in
  g.(0) <- B.or2 b g.(0) p.(0);
  let carries = kogge_stone_prefix b ~p ~g in
  let diff =
    Array.init bits (fun i ->
        if i = 0 then B.inv b p.(0) (* p0 XOR cin(=1) *)
        else B.xor2 b p.(i) carries.(i - 1))
  in
  (diff, carries.(bits - 1))

let subtractor ~bits =
  if bits <= 0 then invalid_arg "Generators.subtractor: bits <= 0";
  let b = B.create ~name:(Printf.sprintf "kssub%d" bits) in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let nb = Array.map (fun net -> B.inv b net) bb in
  let diff, no_borrow = subtract_ks b ~a ~minus_inverted:nb in
  Array.iter (fun net -> B.output b net) diff;
  B.output b no_borrow;
  B.finish b

let array_multiplier ~bits =
  if bits <= 0 then invalid_arg "Generators.array_multiplier: bits <= 0";
  let b = B.create ~name:(Printf.sprintf "mul%d" bits) in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let pp i j = B.and2 b a.(j) bb.(i) in
  (* Accumulator over 2n product bits; [None] means a known zero. *)
  let acc = Array.make (2 * bits) None in
  for j = 0 to bits - 1 do
    acc.(j) <- Some (pp 0 j)
  done;
  for i = 1 to bits - 1 do
    let carry = ref None in
    for j = 0 to bits - 1 do
      let pos = i + j in
      let addend = pp i j in
      match (acc.(pos), !carry) with
      | None, None -> acc.(pos) <- Some addend
      | Some s, None | None, Some s ->
        (* Half adder. *)
        let sum = B.xor2 b s addend in
        let cout = B.and2 b s addend in
        acc.(pos) <- Some sum;
        carry := Some cout
      | Some s, Some c ->
        let sum, cout = B.full_adder b ~a:s ~b:addend ~cin:c in
        acc.(pos) <- Some sum;
        carry := Some cout
    done;
    (* Carry ripples into the zero-extension. *)
    (match !carry with
    | None -> ()
    | Some c ->
      let pos = ref (i + bits) in
      let pending = ref (Some c) in
      while !pending <> None do
        (match (acc.(!pos), !pending) with
        | None, Some c ->
          acc.(!pos) <- Some c;
          pending := None
        | Some s, Some c ->
          acc.(!pos) <- Some (B.xor2 b s c);
          pending := Some (B.and2 b s c)
        | _, None -> ());
        incr pos
      done)
  done;
  Array.iter
    (function
      | Some net -> B.output b net
      | None ->
        (* Top bit can stay structurally zero for bits=1. *)
        B.output b (B.const_zero b))
    acc;
  B.finish b

let array_divider ~dividend_bits ~divisor_bits =
  if dividend_bits <= 0 || divisor_bits <= 0 then
    invalid_arg "Generators.array_divider: bits <= 0";
  let b =
    B.create ~name:(Printf.sprintf "div%dby%d" dividend_bits divisor_bits)
  in
  let num =
    Array.init dividend_bits (fun i -> B.input b (Printf.sprintf "a%d" i))
  in
  let den =
    Array.init divisor_bits (fun i -> B.input b (Printf.sprintf "b%d" i))
  in
  let width = divisor_bits + 1 in
  (* Invert the divisor once; reused by every row's subtractor. *)
  let nden =
    Array.init width (fun i ->
        if i < divisor_bits then B.inv b den.(i)
        else B.const_one b (* ¬0 for the zero-extended top bit *))
  in
  let zero = B.const_zero b in
  let remainder = ref (Array.make width zero) in
  let quotient = Array.make dividend_bits zero in
  for row = dividend_bits - 1 downto 0 do
    (* Shift in the next dividend bit. *)
    let r = !remainder in
    let shifted = Array.init width (fun i -> if i = 0 then num.(row) else r.(i - 1)) in
    let diff, no_borrow = subtract_ks b ~a:shifted ~minus_inverted:nden in
    quotient.(row) <- no_borrow;
    remainder :=
      Array.init width (fun i ->
          B.mux2 b ~sel:no_borrow ~a:shifted.(i) ~b:diff.(i))
  done;
  Array.iter (fun q -> B.output b q) quotient;
  for i = 0 to divisor_bits - 1 do
    B.output b !remainder.(i)
  done;
  B.finish b

(* Synthesis-like cell mix for random logic. *)
let random_kind g =
  let r = Rng.uniform g in
  if r < 0.26 then Cell.Nand2
  else if r < 0.46 then Cell.Nor2
  else if r < 0.60 then Cell.Inv
  else if r < 0.70 then Cell.Aoi21
  else if r < 0.80 then Cell.Oai21
  else if r < 0.87 then Cell.Xor2
  else if r < 0.92 then Cell.Xnor2
  else if r < 0.96 then Cell.And2
  else Cell.Or2

let random_logic ~name ~n_inputs ~n_gates ~depth ~seed =
  if n_inputs <= 0 || n_gates <= 0 || depth <= 0 then
    invalid_arg "Generators.random_logic: non-positive parameter";
  if n_gates < depth then
    invalid_arg "Generators.random_logic: need at least one gate per level";
  let g = Rng.create ~seed in
  let b = B.create ~name in
  let pis = Array.init n_inputs (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  (* Distribute gates over levels; level l nets feed level l+1. *)
  let per_level = Array.make depth (n_gates / depth) in
  for i = 0 to (n_gates mod depth) - 1 do
    per_level.(i) <- per_level.(i) + 1
  done;
  let prev_level = ref (Array.to_list pis) in
  let all_earlier = ref (Array.to_list pis) in
  let spine = ref pis.(0) in
  for level = 0 to depth - 1 do
    let prev = Array.of_list !prev_level in
    let earlier = Array.of_list !all_earlier in
    let this_level = ref [] in
    for k = 0 to per_level.(level) - 1 do
      let kind = random_kind g in
      let arity = Cell.n_inputs kind in
      let pick_input pin =
        (* The spine guarantees a full-depth path; other pins mostly read
           the previous level with occasional long-range taps. *)
        if k = 0 && pin = 0 then !spine
        else if Rng.uniform g < 0.8 then Rng.choose g prev
        else Rng.choose g earlier
      in
      let inputs = Array.init arity pick_input in
      let out = B.add_gate b (Cell.make kind ~strength:1) inputs in
      if k = 0 then spine := out;
      this_level := out :: !this_level
    done;
    prev_level := !this_level;
    all_earlier := !this_level @ !all_earlier
  done;
  let netlist_so_far_outputs () =
    (* Nets without fanout become primary outputs. *)
    !prev_level
  in
  List.iter (fun net -> B.output b net) (netlist_so_far_outputs ());
  let nl = B.finish b in
  (* Also expose any internal net that ended up with no sink. *)
  let fanouts = Netlist.fanouts_of nl in
  let extra =
    List.filter_map
      (fun gi ->
        let out = nl.Netlist.gates.(gi).Netlist.output in
        if fanouts.(out) = [] then Some out else None)
      (List.init (Netlist.n_cells nl) Fun.id)
  in
  if extra = [] then nl
  else
    {
      nl with
      Netlist.primary_outputs =
        Array.append nl.Netlist.primary_outputs (Array.of_list extra);
    }

let size_for_fanout nl =
  let fanouts = Netlist.fanouts_of nl in
  let gates =
    Array.map
      (fun (g : Netlist.gate) ->
        let fo = List.length fanouts.(g.output) in
        let strength =
          if fo <= 2 then 2 else if fo <= 4 then 4 else 8
        in
        { g with Netlist.cell = Cell.make g.cell.Cell.kind ~strength })
      nl.Netlist.gates
  in
  { nl with Netlist.gates }
