module Cell = Nsigma_liberty.Cell

type t = {
  name : string;
  mutable n_nets : int;
  mutable net_names : string list;  (* reverse order *)
  mutable inputs : int list;  (* reverse order *)
  mutable outputs : int list;  (* reverse order *)
  mutable gates : Netlist.gate list;  (* reverse order *)
  mutable n_gates : int;
  mutable one : int option;
  mutable zero : int option;
}

let create ~name =
  {
    name;
    n_nets = 0;
    net_names = [];
    inputs = [];
    outputs = [];
    gates = [];
    n_gates = 0;
    one = None;
    zero = None;
  }

let fresh_net ?name b =
  let id = b.n_nets in
  b.n_nets <- id + 1;
  let net_name = match name with Some n -> n | None -> Printf.sprintf "n%d" id in
  b.net_names <- net_name :: b.net_names;
  id

let input b name =
  let net = fresh_net ~name b in
  b.inputs <- net :: b.inputs;
  net

let output b net = b.outputs <- net :: b.outputs

let add_gate b cell inputs =
  let out = fresh_net b in
  let g_name = Printf.sprintf "g%d" b.n_gates in
  b.gates <- { Netlist.g_name; cell; inputs; output = out } :: b.gates;
  b.n_gates <- b.n_gates + 1;
  out

let gate_count b = b.n_gates

let cell kind strength = Cell.make kind ~strength

let inv b ?(strength = 1) a = add_gate b (cell Cell.Inv strength) [| a |]
let nand2 b ?(strength = 1) x y = add_gate b (cell Cell.Nand2 strength) [| x; y |]
let nor2 b ?(strength = 1) x y = add_gate b (cell Cell.Nor2 strength) [| x; y |]
let and2 b ?(strength = 1) x y = add_gate b (cell Cell.And2 strength) [| x; y |]
let or2 b ?(strength = 1) x y = add_gate b (cell Cell.Or2 strength) [| x; y |]
let xor2 b ?(strength = 1) x y = add_gate b (cell Cell.Xor2 strength) [| x; y |]
let xnor2 b ?(strength = 1) x y = add_gate b (cell Cell.Xnor2 strength) [| x; y |]

let first_input b =
  match List.rev b.inputs with
  | pi :: _ -> pi
  | [] -> invalid_arg "Builder: declare a primary input before using constants"

let const_one b =
  match b.one with
  | Some net -> net
  | None ->
    let pi = first_input b in
    let net = xnor2 b pi pi in
    b.one <- Some net;
    net

let const_zero b =
  match b.zero with
  | Some net -> net
  | None ->
    let pi = first_input b in
    let net = xor2 b pi pi in
    b.zero <- Some net;
    net

let mux2 b ~sel ~a ~b:bb =
  (* out = (a ∧ ¬sel) ∨ (b ∧ sel), in NAND form. *)
  let nsel = inv b sel in
  let ta = nand2 b a nsel in
  let tb = nand2 b bb sel in
  nand2 b ta tb

let full_adder b ~a ~b:bb ~cin =
  let p = xor2 b a bb in
  let sum = xor2 b p cin in
  let t1 = nand2 b a bb in
  let t2 = nand2 b p cin in
  let cout = nand2 b t1 t2 in
  (sum, cout)

let finish b =
  let netlist =
    {
      Netlist.name = b.name;
      n_nets = b.n_nets;
      primary_inputs = Array.of_list (List.rev b.inputs);
      primary_outputs = Array.of_list (List.rev b.outputs);
      gates = Array.of_list (List.rev b.gates);
      net_names = Array.of_list (List.rev b.net_names);
    }
  in
  Netlist.validate netlist;
  netlist
