lib/netlist/verilog_lite.ml: Array Buffer Fun Hashtbl List Netlist Nsigma_liberty Printf String
