lib/netlist/verilog_lite.mli: Netlist
