lib/netlist/netlist.mli: Nsigma_liberty
