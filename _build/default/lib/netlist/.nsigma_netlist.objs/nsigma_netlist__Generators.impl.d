lib/netlist/generators.ml: Array Builder Fun List Netlist Nsigma_liberty Nsigma_stats Printf
