lib/netlist/netlist.ml: Array List Nsigma_liberty Printf Queue
