lib/netlist/builder.ml: Array List Netlist Nsigma_liberty Printf
