lib/netlist/builder.mli: Netlist Nsigma_liberty
