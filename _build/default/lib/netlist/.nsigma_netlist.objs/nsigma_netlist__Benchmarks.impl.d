lib/netlist/benchmarks.ml: Generators List Netlist String
