module Cell = Nsigma_liberty.Cell

type gate = {
  g_name : string;
  cell : Cell.t;
  inputs : int array;
  output : int;
}

type t = {
  name : string;
  n_nets : int;
  primary_inputs : int array;
  primary_outputs : int array;
  gates : gate array;
  net_names : string array;
}

let n_cells t = Array.length t.gates

let driver_of t =
  let d = Array.make t.n_nets (-1) in
  Array.iteri
    (fun gi g ->
      if d.(g.output) <> -1 then
        invalid_arg
          (Printf.sprintf "Netlist: net %d has multiple drivers" g.output);
      d.(g.output) <- gi)
    t.gates;
  d

let fanouts_of t =
  let f = Array.make t.n_nets [] in
  Array.iteri
    (fun gi g ->
      Array.iteri (fun pin net -> f.(net) <- (gi, pin) :: f.(net)) g.inputs)
    t.gates;
  Array.iteri (fun k net -> f.(net) <- (-1, k) :: f.(net)) t.primary_outputs;
  Array.map List.rev f

let topo_order t =
  let drivers = driver_of t in
  let n_gates = Array.length t.gates in
  (* Kahn's algorithm over gates; a gate is ready when all its input nets
     are primary inputs or already-emitted gates. *)
  let pending = Array.make n_gates 0 in
  let dependents = Array.make n_gates [] in
  Array.iteri
    (fun gi g ->
      Array.iter
        (fun net ->
          let d = drivers.(net) in
          if d >= 0 then begin
            pending.(gi) <- pending.(gi) + 1;
            dependents.(d) <- gi :: dependents.(d)
          end)
        g.inputs)
    t.gates;
  let queue = Queue.create () in
  Array.iteri (fun gi p -> if p = 0 then Queue.add gi queue) pending;
  let order = Array.make n_gates (-1) in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let gi = Queue.pop queue in
    order.(!emitted) <- gi;
    incr emitted;
    List.iter
      (fun dep ->
        pending.(dep) <- pending.(dep) - 1;
        if pending.(dep) = 0 then Queue.add dep queue)
      dependents.(gi)
  done;
  if !emitted <> n_gates then invalid_arg "Netlist.topo_order: cyclic netlist";
  order

let validate t =
  if Array.length t.net_names <> t.n_nets then
    invalid_arg "Netlist.validate: net_names length mismatch";
  let check_net net =
    if net < 0 || net >= t.n_nets then
      invalid_arg (Printf.sprintf "Netlist.validate: net %d out of range" net)
  in
  Array.iter check_net t.primary_inputs;
  Array.iter check_net t.primary_outputs;
  Array.iter
    (fun g ->
      check_net g.output;
      Array.iter check_net g.inputs;
      if Array.length g.inputs <> Cell.n_inputs g.cell.Cell.kind then
        invalid_arg
          (Printf.sprintf "Netlist.validate: gate %s arity mismatch" g.g_name))
    t.gates;
  let drivers = driver_of t in
  Array.iter
    (fun pi ->
      if drivers.(pi) <> -1 then
        invalid_arg "Netlist.validate: primary input is driven by a gate")
    t.primary_inputs;
  (* Every net needs a driver: either a gate or a primary input. *)
  let is_pi = Array.make t.n_nets false in
  Array.iter (fun pi -> is_pi.(pi) <- true) t.primary_inputs;
  Array.iteri
    (fun net d ->
      if d = -1 && not is_pi.(net) then
        invalid_arg (Printf.sprintf "Netlist.validate: net %d undriven" net))
    drivers;
  ignore (topo_order t)

let logic_depth t =
  let drivers = driver_of t in
  let order = topo_order t in
  let depth = Array.make (Array.length t.gates) 1 in
  Array.iter
    (fun gi ->
      let g = t.gates.(gi) in
      Array.iter
        (fun net ->
          let d = drivers.(net) in
          if d >= 0 then depth.(gi) <- max depth.(gi) (depth.(d) + 1))
        g.inputs)
    order;
  Array.fold_left max 0 depth

let eval t input_values =
  if Array.length input_values <> Array.length t.primary_inputs then
    invalid_arg "Netlist.eval: input count mismatch";
  let values = Array.make t.n_nets false in
  Array.iteri (fun k pi -> values.(pi) <- input_values.(k)) t.primary_inputs;
  let order = topo_order t in
  Array.iter
    (fun gi ->
      let g = t.gates.(gi) in
      let ins = Array.map (fun net -> values.(net)) g.inputs in
      values.(g.output) <- Cell.eval g.cell.Cell.kind ins)
    order;
  Array.map (fun po -> values.(po)) t.primary_outputs

let stats t =
  Printf.sprintf "%s: %d nets, %d cells, %d PIs, %d POs, depth %d" t.name
    t.n_nets (n_cells t)
    (Array.length t.primary_inputs)
    (Array.length t.primary_outputs)
    (logic_depth t)
