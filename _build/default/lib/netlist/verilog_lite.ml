module Cell = Nsigma_liberty.Cell

let to_string (nl : Netlist.t) =
  let buf = Buffer.create 4096 in
  let name_of net = nl.Netlist.net_names.(net) in
  let port_list =
    Array.to_list (Array.map name_of nl.Netlist.primary_inputs)
    @ Array.to_list (Array.map name_of nl.Netlist.primary_outputs)
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" nl.Netlist.name
       (String.concat ", " port_list));
  let declare keyword nets =
    if Array.length nets > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  %s %s;\n" keyword
           (String.concat ", " (Array.to_list (Array.map name_of nets))))
  in
  declare "input" nl.Netlist.primary_inputs;
  declare "output" nl.Netlist.primary_outputs;
  let is_port = Array.make nl.Netlist.n_nets false in
  Array.iter (fun n -> is_port.(n) <- true) nl.Netlist.primary_inputs;
  Array.iter (fun n -> is_port.(n) <- true) nl.Netlist.primary_outputs;
  let wires =
    List.filter_map
      (fun net -> if is_port.(net) then None else Some (name_of net))
      (List.init nl.Netlist.n_nets Fun.id)
  in
  if wires <> [] then
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (String.concat ", " wires));
  Array.iter
    (fun (g : Netlist.gate) ->
      let pins = name_of g.output :: Array.to_list (Array.map name_of g.inputs) in
      Buffer.add_string buf
        (Printf.sprintf "  %s %s (%s);\n" (Cell.name g.cell) g.g_name
           (String.concat ", " pins)))
    nl.Netlist.gates;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let tokenize line =
  (* Split on whitespace, commas, parens and semicolons, keeping it dumb. *)
  let b = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length b > 0 then begin
      tokens := Buffer.contents b :: !tokens;
      Buffer.clear b
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' | '(' | ')' | ';' -> flush ()
      | c -> Buffer.add_char b c)
    line;
  flush ();
  List.rev !tokens

let of_string text =
  let lines = String.split_on_char '\n' text in
  let module_name = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let instances = ref [] (* (cell, gate name, pin names) *) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      let fail msg = failwith (Printf.sprintf "Verilog_lite: line %d: %s" lineno msg) in
      if line = "" || (String.length line >= 2 && String.sub line 0 2 = "//") then ()
      else
        match tokenize line with
        | [] -> ()
        | "module" :: name :: _ -> module_name := name
        | "endmodule" :: _ -> ()
        | "input" :: rest -> inputs := !inputs @ rest
        | "output" :: rest -> outputs := !outputs @ rest
        | "wire" :: _ -> ()
        | cell_name :: gate_name :: pins ->
          let cell =
            try Cell.of_name cell_name
            with Failure m -> fail m
          in
          if List.length pins <> Cell.n_inputs cell.Cell.kind + 1 then
            fail (Printf.sprintf "instance %s: wrong pin count" gate_name);
          instances := (cell, gate_name, pins) :: !instances
        | [ _ ] -> fail "unrecognised line")
    lines;
  if !module_name = "" then failwith "Verilog_lite: no module found";
  let instances = List.rev !instances in
  (* Assign net ids: inputs, then outputs, then everything else in first-
     appearance order. *)
  let ids = Hashtbl.create 64 in
  let names = ref [] in
  let next = ref 0 in
  let id_of name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      let id = !next in
      incr next;
      Hashtbl.add ids name id;
      names := name :: !names;
      id
  in
  List.iter (fun n -> ignore (id_of n)) !inputs;
  List.iter (fun n -> ignore (id_of n)) !outputs;
  let gates =
    List.map
      (fun (cell, g_name, pins) ->
        match List.map id_of pins with
        | out :: ins ->
          { Netlist.g_name; cell; inputs = Array.of_list ins; output = out }
        | [] -> assert false)
      instances
  in
  let nl =
    {
      Netlist.name = !module_name;
      n_nets = !next;
      primary_inputs = Array.of_list (List.map (Hashtbl.find ids) !inputs);
      primary_outputs = Array.of_list (List.map (Hashtbl.find ids) !outputs);
      gates = Array.of_list gates;
      net_names = Array.of_list (List.rev !names);
    }
  in
  Netlist.validate nl;
  nl

let write_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string nl))

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (really_input_string ic (in_channel_length ic)))
