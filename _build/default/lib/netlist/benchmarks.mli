(** Benchmark registry mirroring the paper's Table III.

    The ISCAS85 suite and the PULPino functional units are distributed as
    proprietary-toolchain artifacts (Design Compiler netlists), so each
    entry here pairs the paper's published statistics (#nets, #cells, the
    MC ±3σ critical-path delays) with a generator that produces a circuit
    of equivalent scale: random logic cones sized/levelled like the
    ISCAS85 circuit, and real arithmetic structures for the PULPino
    units. *)

type paper_stats = {
  p_nets : int;
  p_cells : int;
  p_mc_m3 : float;  (** paper MC −3σ critical-path delay (ps) *)
  p_mc_p3 : float;  (** paper MC +3σ critical-path delay (ps) *)
  p_err_ours_m3 : float;  (** paper's reported −3σ error of their model (%) *)
  p_err_ours_p3 : float;  (** +3σ error (%) *)
}

type t = {
  name : string;
  paper : paper_stats;
  generate : unit -> Netlist.t;  (** deterministic; fanout-sized *)
}

val iscas85 : t list
(** c432, c1355, c1908, c2670, c3540, c6288, c5315, c7552. *)

val pulpino : t list
(** ADD, SUB, MUL, DIV functional units. *)

val all : t list

val find : string -> t
(** Case-insensitive lookup. @raise Not_found. *)

val small_variants : t list
(** Reduced-size versions of a few entries (same generators, smaller
    parameters) for fast tests and smoke benches. *)
