(** Imperative netlist construction used by the circuit generators. *)

type t

val create : name:string -> t

val fresh_net : ?name:string -> t -> int
(** Allocate a new net. *)

val input : t -> string -> int
(** Declare a named primary input; returns its net. *)

val output : t -> int -> unit
(** Mark a net as a primary output. *)

val add_gate :
  t -> Nsigma_liberty.Cell.t -> int array -> int
(** [add_gate b cell inputs] instantiates the cell, allocates and returns
    its output net. *)

val gate_count : t -> int

val const_one : t -> int
(** A logic-1 net (XNOR of a primary input with itself); memoised.  The
    first primary input is used — declare inputs first. *)

val const_zero : t -> int
(** A logic-0 net (XOR of an input with itself); memoised. *)

val finish : t -> Netlist.t
(** Freeze, validate and return the netlist. *)

(** Convenience single-output gate helpers (allocate the output net). *)

val inv : t -> ?strength:int -> int -> int
val nand2 : t -> ?strength:int -> int -> int -> int
val nor2 : t -> ?strength:int -> int -> int -> int
val and2 : t -> ?strength:int -> int -> int -> int
val or2 : t -> ?strength:int -> int -> int -> int
val xor2 : t -> ?strength:int -> int -> int -> int
val xnor2 : t -> ?strength:int -> int -> int -> int

val mux2 : t -> sel:int -> a:int -> b:int -> int
(** 2:1 multiplexer from NAND gates: output = if sel then b else a. *)

val full_adder : t -> a:int -> b:int -> cin:int -> int * int
(** (sum, carry-out) from 2 XOR + 3 NAND gates. *)
