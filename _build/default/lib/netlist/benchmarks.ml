type paper_stats = {
  p_nets : int;
  p_cells : int;
  p_mc_m3 : float;
  p_mc_p3 : float;
  p_err_ours_m3 : float;
  p_err_ours_p3 : float;
}

type t = {
  name : string;
  paper : paper_stats;
  generate : unit -> Netlist.t;
}

let sized f () = Generators.size_for_fanout (f ())

let random name ~n_inputs ~n_gates ~depth ~seed paper =
  {
    name;
    paper;
    generate =
      sized (fun () ->
          Generators.random_logic ~name ~n_inputs ~n_gates ~depth ~seed);
  }

let stats ~nets ~cells ~m3 ~p3 ~em3 ~ep3 =
  {
    p_nets = nets;
    p_cells = cells;
    p_mc_m3 = m3;
    p_mc_p3 = p3;
    p_err_ours_m3 = em3;
    p_err_ours_p3 = ep3;
  }

(* Level counts are tuned so the generated critical paths land in the
   paper's delay range at the 0.6 V corner (~30 ps/stage incl. wire). *)
let iscas85 =
  [
    random "c432" ~n_inputs:36 ~n_gates:655 ~depth:28 ~seed:432
      (stats ~nets:734 ~cells:655 ~m3:584. ~p3:1015. ~em3:8.7 ~ep3:5.9);
    random "c1355" ~n_inputs:41 ~n_gates:977 ~depth:25 ~seed:1355
      (stats ~nets:1091 ~cells:977 ~m3:523. ~p3:921. ~em3:6.9 ~ep3:2.4);
    random "c1908" ~n_inputs:33 ~n_gates:1093 ~depth:34 ~seed:1908
      (stats ~nets:1184 ~cells:1093 ~m3:727. ~p3:1272. ~em3:4.3 ~ep3:1.8);
    random "c2670" ~n_inputs:233 ~n_gates:1810 ~depth:32 ~seed:2670
      (stats ~nets:2415 ~cells:1810 ~m3:686. ~p3:1177. ~em3:4.5 ~ep3:4.1);
    random "c3540" ~n_inputs:50 ~n_gates:2168 ~depth:12 ~seed:3540
      (stats ~nets:2290 ~cells:2168 ~m3:252. ~p3:462. ~em3:5.9 ~ep3:1.7);
    random "c6288" ~n_inputs:32 ~n_gates:3246 ~depth:24 ~seed:6288
      (stats ~nets:3725 ~cells:3246 ~m3:520. ~p3:890. ~em3:4.1 ~ep3:2.3);
    random "c5315" ~n_inputs:178 ~n_gates:5275 ~depth:42 ~seed:5315
      (stats ~nets:5371 ~cells:5275 ~m3:879. ~p3:1581. ~em3:2.9 ~ep3:1.1);
    random "c7552" ~n_inputs:207 ~n_gates:4041 ~depth:37 ~seed:7552
      (stats ~nets:4536 ~cells:4041 ~m3:766. ~p3:1368. ~em3:3.8 ~ep3:0.7);
  ]

let pulpino =
  [
    {
      name = "ADD";
      paper = stats ~nets:2531 ~cells:4088 ~m3:784. ~p3:1867. ~em3:6.3 ~ep3:7.1;
      generate = sized (fun () -> Generators.kogge_stone_adder ~bits:184);
    };
    {
      name = "SUB";
      paper = stats ~nets:2576 ~cells:3066 ~m3:856. ~p3:1903. ~em3:5.3 ~ep3:3.5;
      generate = sized (fun () -> Generators.subtractor ~bits:141);
    };
    {
      name = "MUL";
      paper =
        stats ~nets:62967 ~cells:49570 ~m3:4908. ~p3:6856. ~em3:6.7 ~ep3:6.7;
      generate = sized (fun () -> Generators.array_multiplier ~bits:90);
    };
    {
      name = "DIV";
      paper =
        stats ~nets:91932 ~cells:51654 ~m3:5178. ~p3:7099. ~em3:7.7 ~ep3:6.6;
      generate =
        sized (fun () ->
            Generators.array_divider ~dividend_bits:56 ~divisor_bits:48);
    };
  ]

let all = iscas85 @ pulpino

let find name =
  let lname = String.lowercase_ascii name in
  List.find (fun t -> String.lowercase_ascii t.name = lname) all

let small_variants =
  [
    random "c432-small" ~n_inputs:12 ~n_gates:80 ~depth:10 ~seed:432
      (stats ~nets:92 ~cells:80 ~m3:0. ~p3:0. ~em3:0. ~ep3:0.);
    {
      name = "ADD-small";
      paper = stats ~nets:0 ~cells:0 ~m3:0. ~p3:0. ~em3:0. ~ep3:0.;
      generate = sized (fun () -> Generators.kogge_stone_adder ~bits:8);
    };
    {
      name = "MUL-small";
      paper = stats ~nets:0 ~cells:0 ~m3:0. ~p3:0. ~em3:0. ~ep3:0.;
      generate = sized (fun () -> Generators.array_multiplier ~bits:4);
    };
  ]
