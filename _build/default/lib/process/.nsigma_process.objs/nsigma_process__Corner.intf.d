lib/process/corner.mli: Format Technology
