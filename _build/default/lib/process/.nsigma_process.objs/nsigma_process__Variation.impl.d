lib/process/variation.ml: Array Nsigma_stats Technology
