lib/process/technology.mli:
