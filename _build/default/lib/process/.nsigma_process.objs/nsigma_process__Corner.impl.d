lib/process/corner.ml: Format Technology
