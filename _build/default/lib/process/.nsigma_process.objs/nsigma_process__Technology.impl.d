lib/process/technology.ml:
