lib/process/variation.mli: Nsigma_stats Technology
