(** Monte-Carlo variation sampling.

    A {!sample} fixes one fabrication outcome: the die-to-die (global)
    parameter shifts plus a dedicated random stream from which simulators
    draw the within-die (local, Pelgrom-scaled) per-device and per-segment
    deviates.  Two simulations given the same sample see the same global
    shift but independent local mismatch, exactly like global+local MC in
    a commercial flow. *)

type global = {
  dvth_n : float;  (** shared NMOS threshold shift (V) *)
  dvth_p : float;  (** shared PMOS threshold shift (V) *)
  dbeta : float;  (** shared relative current-factor shift *)
}

type t = {
  global : global;
  locals : Nsigma_stats.Rng.t;
  local_scale : float;  (** 1 for MC samples; 0 for the nominal device *)
}

val nominal : t
(** Zero global shift and a fixed local stream — useful for deterministic
    "typical" simulations. *)

val draw : Technology.t -> Nsigma_stats.Rng.t -> t
(** Sample the global shifts from the technology's die-to-die sigmas and
    split off a local stream. *)

val draw_many : Technology.t -> Nsigma_stats.Rng.t -> int -> t array
(** [draw_many tech g n] is [n] independent samples. *)

val local_dvth : t -> Technology.t -> width:float -> float
(** Draw one device's local threshold shift, σ = AVT/√(W·L). *)

val local_dbeta : t -> Technology.t -> width:float -> float
(** Draw one device's local relative β shift. *)

val local_relative : t -> sigma:float -> float
(** Draw a generic relative deviate (used for wire R/C variation). *)
