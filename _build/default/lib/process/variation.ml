module Rng = Nsigma_stats.Rng

type global = { dvth_n : float; dvth_p : float; dbeta : float }

type t = { global : global; locals : Rng.t; local_scale : float }

let nominal =
  {
    global = { dvth_n = 0.0; dvth_p = 0.0; dbeta = 0.0 };
    locals = Rng.create ~seed:0;
    local_scale = 0.0;
  }

let draw (tech : Technology.t) g =
  let global =
    {
      dvth_n = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_vth_global;
      dvth_p = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_vth_global;
      dbeta = Rng.gaussian_mu_sigma g ~mu:0.0 ~sigma:tech.sigma_beta_global;
    }
  in
  { global; locals = Rng.split g; local_scale = 1.0 }

let draw_many tech g n = Array.init n (fun _ -> draw tech g)

let local_dvth t tech ~width =
  t.local_scale *. Rng.gaussian t.locals *. Technology.sigma_vth_local tech ~width

let local_dbeta t tech ~width =
  t.local_scale *. Rng.gaussian t.locals *. Technology.sigma_beta_local tech ~width

let local_relative t ~sigma = t.local_scale *. Rng.gaussian t.locals *. sigma
