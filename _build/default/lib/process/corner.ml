type process = Typical | Slow | Fast

type t = { process : process; vdd : float; temp_celsius : float }

let typical ~vdd = { process = Typical; vdd; temp_celsius = 25.0 }

let near_threshold = typical ~vdd:0.6
let nominal = typical ~vdd:0.9

let vth_shift process sigma_global =
  match process with
  | Typical -> 0.0
  | Slow -> 1.5 *. sigma_global
  | Fast -> -1.5 *. sigma_global

let apply (tech : Technology.t) corner =
  let shift = vth_shift corner.process tech.sigma_vth_global in
  {
    tech with
    vdd_nominal = corner.vdd;
    temp_kelvin = corner.temp_celsius +. 273.15;
    vth0_n = tech.vth0_n +. shift;
    vth0_p = tech.vth0_p +. shift;
  }

let pp ppf t =
  let p =
    match t.process with Typical -> "TT" | Slow -> "SS" | Fast -> "FF"
  in
  Format.fprintf ppf "%s/%.2fV/%.0fC" p t.vdd t.temp_celsius
