(** Process-voltage-temperature operating points.

    The evaluation of the paper runs at (TT, 0.6 V, 25 °C); the library
    supports arbitrary corners so the voltage sweep of Fig. 2 and
    conventional sign-off corners are expressible. *)

type process = Typical | Slow | Fast
(** Die-level process corner: shifts all thresholds by ±1.5 global σ. *)

type t = {
  process : process;
  vdd : float;  (** supply voltage (V) *)
  temp_celsius : float;
}

val typical : vdd:float -> t
(** TT process at 25 °C with the given supply. *)

val near_threshold : t
(** The paper's evaluation corner: TT, 0.6 V, 25 °C. *)

val nominal : t
(** TT, 0.9 V, 25 °C. *)

val apply : Technology.t -> t -> Technology.t
(** Specialise a technology to the corner: supply, temperature, and the
    process-corner threshold shift. *)

val pp : Format.formatter -> t -> unit

val vth_shift : process -> float -> float
(** [vth_shift p sigma_global] is the deterministic threshold shift the
    corner applies (±1.5 σ_global for Slow/Fast, 0 for Typical). *)
