module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Moments = Nsigma_stats.Moments
module Elmore = Nsigma_rcnet.Elmore
module Provider = Nsigma_sta.Provider
module Engine = Nsigma_sta.Engine
module Design = Nsigma_sta.Design
module Path = Nsigma_sta.Path

type t = {
  tech : Nsigma_process.Technology.t;
  library : Library.t;
  cell_model : Cell_model.t;  (* pooled global fit (reported as Table I) *)
  cell_models : (string * Cell_model.t) list;  (* per (cell, edge) *)
  calibrations : (string * Calibration.t) list;
  wire : Wire_model.t;
}

let calib_key cell edge =
  Printf.sprintf "%s/%s" (Cell.name cell)
    (match edge with `Rise -> "RISE" | `Fall -> "FALL")

let observations_of_table (table : Characterize.table) =
  Array.to_list table.Characterize.points
  |> List.concat_map (fun row ->
         Array.to_list row
         |> List.map (fun (p : Characterize.point) ->
                {
                  Cell_model.moments = p.Characterize.moments;
                  quantiles = p.Characterize.quantiles;
                }))

let build ?(fit_wire_scales = true) library =
  let pairs = Library.cells library in
  (* Pool every grid point of every table into the global Table-I
     regression (the form the paper prints)... *)
  let observations =
    List.concat_map
      (fun (cell, edge) -> observations_of_table (Library.find library cell ~edge))
      pairs
  in
  (* ...and additionally fit the same regression per (cell, edge), which
     is how Fig. 5 stores the coefficients — "in the look-up table form"
     alongside each cell's P/Q/R/K calibration vectors.  The per-cell
     fit is markedly more accurate because one cell's moment-to-quantile
     map over its own operating range is nearly linear in the Table-I
     features, while the pooled map is not. *)
  let cell_models =
    List.map
      (fun (cell, edge) ->
        ( calib_key cell edge,
          Cell_model.fit (observations_of_table (Library.find library cell ~edge)) ))
      pairs
  in
  let calibrations =
    List.map
      (fun (cell, edge) ->
        (calib_key cell edge, Calibration.fit (Library.find library cell ~edge)))
      pairs
  in
  let tech = Library.tech library in
  let wire =
    let base = Wire_model.of_library library in
    if not fit_wire_scales then base
    else
      (* Calibrate eq. (7)'s scales against wire Monte-Carlo — the
         paper's place-and-route-netlist experiments. *)
      Wire_model.fit_scales base (Wire_lab.standard_observations tech ())
  in
  {
    tech;
    library;
    cell_model = Cell_model.fit observations;
    cell_models;
    calibrations;
    wire;
  }

let calibration t cell ~edge =
  match List.assoc_opt (calib_key cell edge) t.calibrations with
  | Some c -> c
  | None -> raise Not_found

let cell_model_for t cell ~edge =
  match List.assoc_opt (calib_key cell edge) t.cell_models with
  | Some cm -> cm
  | None -> t.cell_model

let cell_quantile t cell ~edge ~input_slew ~load_cap ~sigma =
  let calib = calibration t cell ~edge in
  let moments = Calibration.moments_at calib ~slew:input_slew ~load:load_cap in
  Cell_model.predict (cell_model_for t cell ~edge) moments ~sigma

let wire_quantile t ~tree ~tap ~driver ~load ~sigma =
  let elmore = Elmore.delay_at tree tap in
  Wire_model.quantile t.wire ~elmore ~driver ~load ~sigma

let provider t ~sigma =
  let table_edge = function Provider.Rise -> `Rise | Provider.Fall -> `Fall in
  {
    Provider.label = Printf.sprintf "n-sigma(%+d)" sigma;
    cell_delay =
      (fun gate ~edge ~input_slew ~load_cap ->
        cell_quantile t gate.Nsigma_netlist.Netlist.cell ~edge:(table_edge edge)
          ~input_slew ~load_cap ~sigma);
    cell_out_slew =
      (fun gate ~edge ~input_slew ~load_cap ->
        (* Sigma-consistent slew propagation: a sample slow enough to sit
           at the nσ delay also produces a correspondingly slow output
           transition, which the *next* stage's moment calibration then
           sees — the compounding half of the cell/wire interaction.
           Output slew scales with delay to first order, so degrade the
           characterised mean slew by the nσ/0σ delay ratio. *)
        let cell = gate.Nsigma_netlist.Netlist.cell in
        let table = Library.find t.library cell ~edge:(table_edge edge) in
        let mean_slew =
          Characterize.out_slew_at table ~slew:input_slew ~load:load_cap
        in
        if sigma = 0 then mean_slew
        else begin
          (* The output transition degrades sub-linearly with the
             sample's delay: it is partly re-driven by the cell's own
             (degraded) current and partly a feedthrough of the input
             ramp that the slew-indexed lookup above already carries —
             a square-root damping of the delay ratio splits the two. *)
          let q0 =
            cell_quantile t cell ~edge:(table_edge edge) ~input_slew ~load_cap
              ~sigma:0
          in
          let qn =
            cell_quantile t cell ~edge:(table_edge edge) ~input_slew ~load_cap
              ~sigma
          in
          if q0 > 0.0 then Float.max 1e-12 (mean_slew *. sqrt (qn /. q0))
          else mean_slew
        end);
    wire_delay =
      (fun ~net:_ ~driver ~sink ~tree ~tap ->
        match driver with
        | None -> Elmore.delay_at tree tap
        | Some d -> wire_quantile t ~tree ~tap ~driver:d ~load:sink ~sigma);
    wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        sqrt
          ((slew_at_root *. slew_at_root)
          +. (2.2 *. wire_delay *. 2.2 *. wire_delay)));
  }

let path_quantile t design ~sigma =
  let report = Engine.analyze t.tech (provider t ~sigma) design in
  Engine.circuit_delay report

let path_quantile_of_path t (design : Design.t) (path : Path.t) ~sigma =
  let nl = design.Design.netlist in
  let gate_cell hop =
    nl.Nsigma_netlist.Netlist.gates.(hop.Path.gate).Nsigma_netlist.Netlist.cell
  in
  let table_edge = function Provider.Rise -> `Rise | Provider.Fall -> `Fall in
  (* Eq. 10 with sigma-consistent slew propagation: each stage's quantile
     is evaluated at the transition the *previous* stage produces at the
     same sigma level (the interaction the paper calibrates for), not at
     the nominal-analysis slew. *)
  let peri ~wire_delay ~slew =
    sqrt ((slew *. slew) +. (2.2 *. wire_delay *. 2.2 *. wire_delay))
  in
  let rec go acc slew = function
    | [] -> acc
    | hop :: rest ->
      let cell = gate_cell hop in
      let edge = table_edge hop.Path.out_edge in
      let cell_t =
        cell_quantile t cell ~edge ~input_slew:slew ~load_cap:hop.Path.load_cap
          ~sigma
      in
      let out_slew =
        let table = Library.find t.library cell ~edge in
        let mean_slew =
          Characterize.out_slew_at table ~slew ~load:hop.Path.load_cap
        in
        if sigma = 0 then mean_slew
        else begin
          (* Square-root damping; see the provider's cell_out_slew. *)
          let q0 =
            cell_quantile t cell ~edge ~input_slew:slew
              ~load_cap:hop.Path.load_cap ~sigma:0
          in
          if q0 > 0.0 then Float.max 1e-12 (mean_slew *. sqrt (cell_t /. q0))
          else mean_slew
        end
      in
      let wire_t, next_slew =
        let out_net = hop.Path.out_net in
        let tree = Design.loaded_parasitic t.tech design ~net:out_net in
        let tap, load =
          match rest with
          | next :: _ -> (next.Path.tap, Some (gate_cell next))
          | [] -> (path.Path.end_tap, None)
        in
        let w = wire_quantile t ~tree ~tap ~driver:cell ~load ~sigma in
        (w, peri ~wire_delay:w ~slew:out_slew)
      in
      go (acc +. cell_t +. wire_t) next_slew rest
  in
  go 0.0 Provider.input_slew_default path.Path.hops

(* ----- persistence ----- *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "NSIGMA_MODEL 1\n";
      let term_name = function
        | Cell_model.Sigma_gamma -> "sg"
        | Cell_model.Sigma_kappa -> "sk"
        | Cell_model.Gamma_kappa -> "gk"
      in
      let write_level prefix (l : Cell_model.level_fit) =
        Printf.fprintf oc "%s %d" prefix l.Cell_model.sigma;
        List.iter
          (fun (term, c) -> Printf.fprintf oc " %s %.9g" (term_name term) c)
          l.Cell_model.coeffs;
        Printf.fprintf oc " r2 %.9g\n" l.Cell_model.r2
      in
      List.iter (write_level "LEVEL") t.cell_model.Cell_model.levels;
      List.iter
        (fun (key, cm) ->
          List.iter
            (fun l -> write_level (Printf.sprintf "CLEVEL %s" key) l)
            cm.Cell_model.levels)
        t.cell_models;
      List.iter
        (fun (_, calib) ->
          List.iter (fun line -> output_string oc (line ^ "\n"))
            (Calibration.to_lines calib))
        t.calibrations;
      List.iter (fun line -> output_string oc (line ^ "\n"))
        (Wire_model.to_lines t.wire))

let load library path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      let lines = List.rev !lines in
      let fail msg = failwith (path ^ ": " ^ msg) in
      (match lines with
      | "NSIGMA_MODEL 1" :: _ -> ()
      | _ -> fail "bad header");
      let levels = ref [] and calibs = ref [] and wire_lines = ref [] in
      let cell_levels : (string, Cell_model.level_fit list) Hashtbl.t =
        Hashtbl.create 64
      in
      let cell_keys = ref [] in
      let rec parse_coeffs acc = function
        | "r2" :: r2 :: [] -> (List.rev acc, float_of_string r2)
        | name :: value :: more ->
          let term =
            match name with
            | "sg" -> Cell_model.Sigma_gamma
            | "sk" -> Cell_model.Sigma_kappa
            | "gk" -> Cell_model.Gamma_kappa
            | _ -> failwith (path ^ ": bad term name")
          in
          parse_coeffs ((term, float_of_string value) :: acc) more
        | _ -> failwith (path ^ ": bad LEVEL line")
      in
      let rec consume = function
        | [] -> ()
        | line :: rest when String.length line >= 6 && String.sub line 0 6 = "CLEVEL"
          ->
          (match String.split_on_char ' ' line with
          | "CLEVEL" :: key :: sigma :: rest_words ->
            let sigma = int_of_string sigma in
            let coeffs, r2 = parse_coeffs [] rest_words in
            let existing =
              match Hashtbl.find_opt cell_levels key with
              | Some l -> l
              | None ->
                cell_keys := key :: !cell_keys;
                []
            in
            Hashtbl.replace cell_levels key
              ({ Cell_model.sigma; coeffs; r2 } :: existing)
          | _ -> fail "bad CLEVEL line");
          consume rest
        | line :: rest when String.length line >= 5 && String.sub line 0 5 = "LEVEL"
          ->
          (match String.split_on_char ' ' line with
          | "LEVEL" :: sigma :: rest_words ->
            let sigma = int_of_string sigma in
            let coeffs, r2 = parse_coeffs [] rest_words in
            levels := { Cell_model.sigma; coeffs; r2 } :: !levels
          | _ -> fail "bad LEVEL line");
          consume rest
        | line :: rest when String.length line >= 5 && String.sub line 0 5 = "CALIB"
          ->
          let rec split_block acc = function
            | [] -> fail "truncated CALIB block"
            | "ENDCALIB" :: more -> (List.rev ("ENDCALIB" :: acc), more)
            | l :: more -> split_block (l :: acc) more
          in
          let block, more = split_block [ line ] rest in
          calibs := Calibration.of_lines block :: !calibs;
          consume more
        | line :: rest when String.length line >= 4 && String.sub line 0 4 = "WIRE"
          ->
          wire_lines := line :: rest;
          ()
        | _ :: rest -> consume rest
      in
      consume (List.tl lines);
      if !levels = [] then fail "no LEVEL lines";
      if !wire_lines = [] then fail "no WIRE section";
      let calibrations =
        List.rev_map
          (fun calib ->
            (calib_key (Calibration.cell calib) (Calibration.edge calib), calib))
          !calibs
      in
      let sort_levels ls =
        List.sort
          (fun (a : Cell_model.level_fit) b ->
            compare a.Cell_model.sigma b.Cell_model.sigma)
          ls
      in
      let cell_models =
        List.rev_map
          (fun key -> (key, { Cell_model.levels = sort_levels (Hashtbl.find cell_levels key) }))
          !cell_keys
      in
      {
        tech = Library.tech library;
        library;
        cell_model = { Cell_model.levels = sort_levels !levels };
        cell_models;
        calibrations;
        wire = Wire_model.of_lines !wire_lines;
      })
