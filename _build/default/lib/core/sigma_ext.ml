module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module D = Nsigma_stats.Distribution

let probability ~level = Quantile.probability_of_sigma level

let check_level level =
  if not (level >= -6.0 && level <= 6.0) then
    invalid_arg "Sigma_ext: level outside [-6, 6]"

(* Log-skew-normal surrogate of a delay distribution, used only for the
   *shape* of the extreme tails.  Delays are positive; a failed fit
   (e.g. near-zero mean) falls back to a Gaussian surrogate. *)
let surrogate (m : Moments.summary) =
  if m.Moments.mean > 0.0 && m.Moments.std > 0.0 then begin
    match D.Log_skew_normal.fit_moments m with
    | lsn -> `Lsn lsn
    | exception _ -> `Normal { D.Normal.mu = m.Moments.mean; sigma = m.Moments.std }
  end
  else `Normal { D.Normal.mu = m.Moments.mean; sigma = Float.max 1e-15 m.Moments.std }

let surrogate_quantile s level =
  let p = probability ~level in
  match s with
  | `Lsn lsn -> D.Log_skew_normal.quantile lsn p
  | `Normal n -> D.Normal.quantile n p

let quantile cm (m : Moments.summary) ~level =
  check_level level;
  if Float.abs level <= 3.0 then begin
    (* Piecewise-linear between the fitted integer levels. *)
    let lo = int_of_float (Float.floor level) in
    let hi = int_of_float (Float.ceil level) in
    if lo = hi then Cell_model.predict cm m ~sigma:lo
    else begin
      let ql = Cell_model.predict cm m ~sigma:lo in
      let qh = Cell_model.predict cm m ~sigma:hi in
      let frac = level -. float_of_int lo in
      ql +. (frac *. (qh -. ql))
    end
  end
  else begin
    (* Splice the surrogate tail onto the fitted ±3σ anchor. *)
    let anchor_level = if level > 0.0 then 3 else -3 in
    let s = surrogate m in
    let anchor_model = Cell_model.predict cm m ~sigma:anchor_level in
    let anchor_surr = surrogate_quantile s (float_of_int anchor_level) in
    let tail = surrogate_quantile s level in
    if anchor_surr > 0.0 && anchor_model > 0.0 then
      tail *. (anchor_model /. anchor_surr)
    else tail +. (anchor_model -. anchor_surr)
  end

let cell_quantile model cell ~edge ~input_slew ~load_cap ~level =
  check_level level;
  let calib = Model.calibration model cell ~edge in
  let moments = Calibration.moments_at calib ~slew:input_slew ~load:load_cap in
  quantile (Model.cell_model_for model cell ~edge) moments ~level
