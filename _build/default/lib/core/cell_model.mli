(** The N-sigma cell delay quantile model (Table I of the paper).

    Each sigma level's quantile is expressed from the first four moments
    [μ, σ, γ, κ] of the cell-delay distribution:

    {v
    T(−3σ) = μ − 3σ + B30·σκ + B31·γκ
    T(−2σ) = μ − 2σ + B20·σγ + B21·σκ + B22·γκ
    T(−σ)  = μ −  σ + B10·σγ + B11·γκ
    T(0σ)  = μ      + A00·σγ + A01·γκ
    T(+σ)  = μ +  σ + A10·σγ + A11·γκ
    T(+2σ) = μ + 2σ + A20·σγ + A21·σκ + A22·γκ
    T(+3σ) = μ + 3σ + A30·σκ + A31·γκ
    v}

    following the paper's observation that skewness (σγ term) dominates
    the inner levels while kurtosis (σκ) dominates ±2σ/±3σ, with the
    cross term γκ everywhere.  The A/B coefficients are {e global}: one
    regression across every characterised cell and operating condition,
    after which the model applies to any cell whose moments are known. *)

type term = Sigma_gamma | Sigma_kappa | Gamma_kappa

type level_fit = {
  sigma : int;  (** the level n ∈ −3 … +3 *)
  coeffs : (term * float) list;  (** fitted A/B coefficients, in Table-I order *)
  r2 : float;  (** regression quality on the training set *)
}

type t = { levels : level_fit list (* exactly 7, ascending sigma *) }

val terms_for_level : int -> term list
(** The feature set Table I assigns to each level. *)

val term_value : term -> Nsigma_stats.Moments.summary -> float
(** Evaluate a term: σγ, σκ (κ as excess w.r.t. the Gaussian 3 so a
    normal sample contributes no correction), or γκ. *)

type observation = {
  moments : Nsigma_stats.Moments.summary;
  quantiles : float array;  (** empirical sigma-level delays, −3σ … +3σ *)
}

val fit : ?terms_for:(int -> term list) -> observation list -> t
(** Least-squares fit of all 14 coefficients from characterisation
    observations (any mix of cells and operating conditions).  The fit is
    weighted by 1/σ so every operating point contributes its relative
    error.  [terms_for] (default {!terms_for_level}) selects each level's
    feature set — override it to ablate Table I's feature choices; the
    fitted terms are stored per level, so {!predict} follows whatever
    selection was used.
    @raise Invalid_argument on an empty training set. *)

val predict : t -> Nsigma_stats.Moments.summary -> sigma:int -> float
(** Quantile of a delay distribution with the given moments.
    @raise Invalid_argument for sigma outside −3 … +3. *)

val gaussian_baseline : Nsigma_stats.Moments.summary -> sigma:int -> float
(** μ + nσ — the model with all A/B forced to zero (ablation baseline). *)

val pp : Format.formatter -> t -> unit
(** Render the fitted Table I. *)
