module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Moments = Nsigma_stats.Moments
module Regression = Nsigma_stats.Regression

type t = {
  ratio_fo4 : float;
  x_table : (string * float) list;
  scale_fi : float;
  scale_fo : float;
}

let fo4_reference = Cell.make Cell.Inv ~strength:4

let theoretical_x cell =
  sqrt (4.0 /. (float_of_int (Cell.stack_count cell) *. float_of_int cell.Cell.strength))

(* A cell's delay variability at the reference slew under its own FO4
   load, from the characterised fall table. *)
let library_ratio library cell =
  match Library.find_opt library cell ~edge:`Fall with
  | None -> None
  | Some table ->
    let tech = Library.tech library in
    let m =
      Characterize.moments_at table ~slew:Characterize.reference_slew
        ~load:(Cell.fo4_load tech cell)
    in
    if m.Moments.mean <= 0.0 then None else Some (m.Moments.std /. m.Moments.mean)

let of_library library =
  let ratio_fo4 =
    match library_ratio library fo4_reference with
    | Some r -> r
    | None ->
      invalid_arg
        "Wire_model.of_library: library must contain INVX4 (fall) as the FO4 reference"
  in
  let x_table =
    List.filter_map
      (fun (cell, edge) ->
        if edge <> `Fall then None
        else
          Option.map
            (fun r -> (Cell.name cell, r /. ratio_fo4))
            (library_ratio library cell))
      (Library.cells library)
  in
  { ratio_fo4; x_table; scale_fi = 1.0; scale_fo = 1.0 }

let x_of t cell =
  match List.assoc_opt (Cell.name cell) t.x_table with
  | Some x -> x
  | None -> theoretical_x cell

let cell_ratio t cell = x_of t cell *. t.ratio_fo4

let variability t ~driver ~load =
  let fi = x_of t driver *. cell_ratio t driver in
  let fo = match load with None -> 0.0 | Some c -> x_of t c *. cell_ratio t c in
  (t.scale_fi *. fi) +. (t.scale_fo *. fo)

let quantile t ~elmore ~driver ~load ~sigma =
  (* Physical floor: a wire never gets faster than a small fraction of
     its Elmore delay, however deep the left tail. *)
  let factor = 1.0 +. (float_of_int sigma *. variability t ~driver ~load) in
  Float.max 0.05 factor *. elmore

type wire_observation = {
  driver : Cell.t;
  load : Cell.t option;
  measured_variability : float;
}

let fit_scales t observations =
  if observations = [] then invalid_arg "Wire_model.fit_scales: no observations";
  let design =
    Array.of_list
      (List.map
         (fun o ->
           let fi = x_of t o.driver *. cell_ratio t o.driver in
           let fo =
             match o.load with
             | None -> 0.0
             | Some c -> x_of t c *. cell_ratio t c
           in
           [| fi; fo |])
         observations)
  in
  let target =
    Array.of_list (List.map (fun o -> o.measured_variability) observations)
  in
  let f = Regression.fit ~design ~target in
  { t with scale_fi = f.Regression.coeffs.(0); scale_fo = f.Regression.coeffs.(1) }

let to_lines t =
  Printf.sprintf "WIRE %.9g %.9g %.9g" t.ratio_fo4 t.scale_fi t.scale_fo
  :: List.map (fun (name, x) -> Printf.sprintf "X %s %.9g" name x) t.x_table
  @ [ "ENDWIRE" ]

let of_lines lines =
  let fail msg = failwith ("Wire_model.of_lines: " ^ msg) in
  match lines with
  | header :: rest ->
    let ratio_fo4, scale_fi, scale_fo =
      match String.split_on_char ' ' header with
      | [ "WIRE"; r; a; b ] ->
        (float_of_string r, float_of_string a, float_of_string b)
      | _ -> fail "bad WIRE header"
    in
    let x_table =
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "X"; name; x ] -> Some (name, float_of_string x)
          | [ "ENDWIRE" ] -> None
          | _ -> fail "bad X line")
        rest
    in
    { ratio_fo4; x_table; scale_fi; scale_fo }
  | [] -> fail "empty input"
