(** The complete N-sigma timing model: Table-I quantile regression +
    per-cell moment calibration + wire variability model, packaged as an
    STA provider per sigma level (eq. 10).

    Build once from a characterised library; then any netlist can be
    analysed at any sigma level without further Monte-Carlo. *)

type t = {
  tech : Nsigma_process.Technology.t;
  library : Nsigma_liberty.Library.t;
  cell_model : Cell_model.t;
      (** pooled global Table-I coefficients, as the paper prints them *)
  cell_models : (string * Cell_model.t) list;
      (** the same regression per (cell, edge) — the LUT-file form of
          Fig. 5, used by {!cell_quantile} (markedly more accurate than
          the pooled fit; see the ablation bench) *)
  calibrations : (string * Calibration.t) list;  (** per (cell, edge) *)
  wire : Wire_model.t;
}

val build : ?fit_wire_scales:bool -> Nsigma_liberty.Library.t -> t
(** Fit everything from the library: the A/B regression pools every
    characterised (cell, edge, slew, load) point; calibration surfaces
    are fitted per cell; wire X coefficients from eq. 6.  Unless
    [fit_wire_scales] is false, eq. (7)'s scales (a, b) are then
    calibrated against a built-in wire Monte-Carlo sweep (a few seconds;
    the paper's "place-and-route netlist" experiments). *)

val calibration :
  t -> Nsigma_liberty.Cell.t -> edge:[ `Rise | `Fall ] -> Calibration.t
(** @raise Not_found for an uncharacterised pair. *)

val cell_model_for :
  t -> Nsigma_liberty.Cell.t -> edge:[ `Rise | `Fall ] -> Cell_model.t
(** The per-cell coefficients when available, else the global fit. *)

val cell_quantile :
  t ->
  Nsigma_liberty.Cell.t ->
  edge:[ `Rise | `Fall ] ->
  input_slew:float ->
  load_cap:float ->
  sigma:int ->
  float
(** T_c(nσ) with moments calibrated to the operating condition. *)

val wire_quantile :
  t ->
  tree:Nsigma_rcnet.Rctree.t ->
  tap:int ->
  driver:Nsigma_liberty.Cell.t ->
  load:Nsigma_liberty.Cell.t option ->
  sigma:int ->
  float
(** T_w(nσ) = (1 + n·X_w)·T_Elmore at the given tap. *)

val provider : t -> sigma:int -> Nsigma_sta.Provider.t
(** The sigma-level STA provider: running the engine with it yields
    T_path(nσ) = Σ T_c(nσ) + Σ T_w(nσ) along every path (eq. 10). *)

val path_quantile : t -> Nsigma_sta.Design.t -> sigma:int -> float
(** Circuit-level nσ delay: analyse the design with {!provider}. *)

val path_quantile_of_path :
  t -> Nsigma_sta.Design.t -> Nsigma_sta.Path.t -> sigma:int -> float
(** Eq. 10 applied to one extracted path (stage conditions re-derived
    from the path's recorded slews/loads). *)

val save : t -> string -> unit
(** Persist the fitted coefficients (Table I, calibration surfaces, wire
    X table) — the "coefficients file in look-up-table form" of Fig. 5. *)

val load : Nsigma_liberty.Library.t -> string -> t
(** Restore a fitted model against its library.
    @raise Failure on malformed input. *)
