module Moments = Nsigma_stats.Moments
module Regression = Nsigma_stats.Regression
module Quantile = Nsigma_stats.Quantile

type term = Sigma_gamma | Sigma_kappa | Gamma_kappa

type level_fit = {
  sigma : int;
  coeffs : (term * float) list;
  r2 : float;
}

type t = { levels : level_fit list }

let terms_for_level n =
  match abs n with
  | 3 -> [ Sigma_kappa; Gamma_kappa ]
  | 2 -> [ Sigma_gamma; Sigma_kappa; Gamma_kappa ]
  | 0 | 1 -> [ Sigma_gamma; Gamma_kappa ]
  | _ -> invalid_arg "Cell_model.terms_for_level: sigma outside -3..3"

(* Kurtosis enters as excess over the Gaussian 3 so that a perfectly
   normal population needs no correction; the same normalisation is
   applied at fit and predict time, so it only re-parameterises the
   intercept-free regression in a better-conditioned basis. *)
let term_value term (m : Moments.summary) =
  match term with
  | Sigma_gamma -> m.std *. m.skewness
  | Sigma_kappa -> m.std *. (m.kurtosis -. 3.0)
  | Gamma_kappa -> m.skewness *. (m.kurtosis -. 3.0) *. m.std
(* The raw γκ product of Table I is dimensionless while quantiles carry
   seconds; scaling by σ (the only scale available) makes the term
   dimensionally meaningful — with delays in seconds a dimensionless
   term would be forced to a coefficient of ~1e-12 and drown in the
   normal-equation conditioning. *)

type observation = {
  moments : Moments.summary;
  quantiles : float array;
}

let gaussian_baseline (m : Moments.summary) ~sigma =
  m.mean +. (float_of_int sigma *. m.std)

let sigma_index sigma =
  match List.find_index (fun n -> n = sigma) Quantile.sigma_levels with
  | Some i -> i
  | None -> invalid_arg "Cell_model: sigma outside -3..3"

let fit ?(terms_for = terms_for_level) observations =
  if observations = [] then invalid_arg "Cell_model.fit: empty training set";
  let fit_level sigma =
    let terms = terms_for sigma in
    let idx = sigma_index sigma in
    if terms = [] then begin
      (* Degenerate (e.g. pure-Gaussian ablation): no correction terms to
         fit; report the baseline's residual quality. *)
      let err o =
        o.quantiles.(idx) -. gaussian_baseline o.moments ~sigma
      in
      let n = float_of_int (List.length observations) in
      let ss_res = List.fold_left (fun a o -> a +. (err o ** 2.0)) 0.0 observations in
      let mean_q =
        List.fold_left (fun a o -> a +. o.quantiles.(idx)) 0.0 observations /. n
      in
      let ss_tot =
        List.fold_left
          (fun a o -> a +. ((o.quantiles.(idx) -. mean_q) ** 2.0))
          0.0 observations
      in
      { sigma; coeffs = []; r2 = (if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)) }
    end
    else begin
    (* Weight each observation by 1/σ: both the residual and the features
       scale with σ, so unweighted least squares would be dominated by
       the large-delay grid corners; weighting makes every operating
       point contribute its *relative* error. *)
    let weight o = 1.0 /. Float.max 1e-15 o.moments.Nsigma_stats.Moments.std in
    let design =
      Array.of_list
        (List.map
           (fun o ->
             let w = weight o in
             Array.of_list
               (List.map (fun t -> w *. term_value t o.moments) terms))
           observations)
    in
    let target =
      Array.of_list
        (List.map
           (fun o ->
             weight o *. (o.quantiles.(idx) -. gaussian_baseline o.moments ~sigma))
           observations)
    in
    let f = Regression.fit ~design ~target in
    {
      sigma;
      coeffs = List.mapi (fun i t -> (t, f.Regression.coeffs.(i))) terms;
      r2 = f.Regression.r2;
    }
    end
  in
  { levels = List.map fit_level Quantile.sigma_levels }

let predict t (m : Moments.summary) ~sigma =
  let level =
    match List.find_opt (fun l -> l.sigma = sigma) t.levels with
    | Some l -> l
    | None -> invalid_arg "Cell_model.predict: sigma outside -3..3"
  in
  List.fold_left
    (fun acc (term, c) -> acc +. (c *. term_value term m))
    (gaussian_baseline m ~sigma)
    level.coeffs

let term_name = function
  | Sigma_gamma -> "sg"
  | Sigma_kappa -> "sk"
  | Gamma_kappa -> "gk"

let pp ppf t =
  Format.fprintf ppf "@[<v>N-sigma quantile model (Table I):@,";
  List.iter
    (fun l ->
      Format.fprintf ppf "  T(%+dσ) = μ %+d·σ" l.sigma l.sigma;
      List.iter
        (fun (term, c) -> Format.fprintf ppf " %+.4f·%s" c (term_name term))
        l.coeffs;
      Format.fprintf ppf "   (R²=%.4f)@," l.r2)
    t.levels;
  Format.fprintf ppf "@]"
