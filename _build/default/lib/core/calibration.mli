(** Operating-condition calibration of cell delay moments (eqs. 1–3).

    A cell's moments drift with its input slew S and output load C; the
    N-sigma model must evaluate [μ′, σ′, γ′, κ′] at the conditions a cell
    actually sees in a path.  Two interchangeable evaluations are
    provided:

    - {!moments_at} — the primary path: local bilinear interpolation on
      the characterisation grid.  Within one grid cell this is exactly
      the paper's eq. (2) form v₀ + P·[ΔS, ΔC] + K·ΔS·ΔC, anchored to
      the surrounding grid points (the "interpolation method based on
      SPICE MC simulations" of Fig. 5);
    - {!moments_at_surface} — single global parametric surfaces over
      (ΔS, ΔC) in the literal shape of eq. (2) (bilinear for μ, σ) and
      eq. (3) (per-axis cubic + cross term for γ, κ), fitted once per
      cell.  Kept as the paper-literal form and exercised by the
      calibration ablation bench.

    Internally ΔS is carried in ps and ΔC in fF for conditioning.
    Evaluation clamps (ΔS, ΔC) into the characterised span — cubic
    surfaces and LUT edges are not trusted to extrapolate. *)

type t

val reference_slew : float
(** S_ref = 10 ps. *)

val reference_load : float
(** C_ref = 0.4 fF. *)

val fit : Nsigma_liberty.Characterize.table -> t
(** Build the grids and fit the parametric surfaces from a characterised
    table. *)

val cell : t -> Nsigma_liberty.Cell.t
val edge : t -> [ `Rise | `Fall ]

val reference_moments : t -> Nsigma_stats.Moments.summary
(** The moments at (S_ref, C_ref), M_ref = [μ₀, σ₀, γ₀, κ₀]. *)

val moments_at : t -> slew:float -> load:float -> Nsigma_stats.Moments.summary
(** Calibrated moments by local grid interpolation.  σ′ is clamped
    positive, γ′ to [−2, 8], κ′ to [1, 40]. *)

val moments_at_surface :
  t -> slew:float -> load:float -> Nsigma_stats.Moments.summary
(** Calibrated moments from the global eq. (2)/(3) surfaces (ablation
    mode), with the same physical clamps. *)

val surfaces_r2 : t -> float * float * float * float
(** Fit quality (R²) of the parametric μ, σ, γ, κ surfaces. *)

val to_lines : t -> string list
(** Serialise (grids + surface coefficients) for the coefficient store. *)

val of_lines : string list -> t
(** @raise Failure on malformed input. *)
