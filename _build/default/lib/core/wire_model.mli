(** The N-sigma wire delay model (eqs. 4–9 of the paper).

    Elmore supplies the mean: μ_w = Σ R·C (eq. 4).  The relative
    variability X_w = σ_w/μ_w is modelled from the driver and load cells
    (eq. 7):

      X_w = a · X_FI · (σ_FI/μ_FI) + b · X_FO · (σ_FO/μ_FO)

    with the cell-specific coefficients X (eq. 6) expressing each cell's
    delay variability relative to the FO4 reference inverter (INVX4), and
    Pelgrom scaling (eq. 5) predicting X ∝ 1/√(n·strength).  The scales
    (a, b) default to the paper's implicit (1, 1) and are re-fitted
    against wire Monte-Carlo data by {!Model.build} (via
    {!Wire_lab.standard_observations}), which is how the model absorbs
    the substrate's actual driver/load sensitivities.  Quantiles follow
    eq. 9: T_w(nσ) = (1 + n·X_w)·T_Elmore, floored at 5% of Elmore. *)

type t = {
  ratio_fo4 : float;  (** σ/μ of the INVX4 reference delay *)
  x_table : (string * float) list;  (** X per cell name (eq. 6) *)
  scale_fi : float;  (** a of eq. 7 *)
  scale_fo : float;  (** b of eq. 7 *)
}

val theoretical_x : Nsigma_liberty.Cell.t -> float
(** Pelgrom prediction √(4/(n·strength)) (eq. 5, normalised to INVX4). *)

val of_library : Nsigma_liberty.Library.t -> t
(** Calibrate every X from the characterised library: each cell's σ/μ at
    the reference slew under its own FO4 load, divided by INVX4's
    (eq. 6).  Scales start at (1, 1). *)

val x_of : t -> Nsigma_liberty.Cell.t -> float
(** Look up (or fall back to {!theoretical_x}) a cell's coefficient. *)

val cell_ratio : t -> Nsigma_liberty.Cell.t -> float
(** σ/μ of a cell via eq. 6: X_cell · ratio_fo4. *)

val variability : t -> driver:Nsigma_liberty.Cell.t ->
  load:Nsigma_liberty.Cell.t option -> float
(** X_w of eq. 7; a missing load (primary-output segment) contributes
    nothing. *)

val quantile :
  t ->
  elmore:float ->
  driver:Nsigma_liberty.Cell.t ->
  load:Nsigma_liberty.Cell.t option ->
  sigma:int ->
  float
(** Eq. 9. *)

type wire_observation = {
  driver : Nsigma_liberty.Cell.t;
  load : Nsigma_liberty.Cell.t option;
  measured_variability : float;  (** σ_w/μ_w from Monte-Carlo *)
}

val fit_scales : t -> wire_observation list -> t
(** Re-fit (a, b) by least squares on measured wire variabilities — the
    paper's "experiment results from place-and-route netlists". *)

val to_lines : t -> string list
val of_lines : string list -> t
