module Moments = Nsigma_stats.Moments
module Interpolate = Nsigma_stats.Interpolate
module Characterize = Nsigma_liberty.Characterize
module Cell = Nsigma_liberty.Cell

let reference_slew = Characterize.reference_slew
let reference_load = Characterize.reference_load

(* Feature scaling: ΔS in picoseconds, ΔC in femtofarads. *)
let ds_of slew = (slew -. reference_slew) /. 1e-12
let dc_of load = (load -. reference_load) /. 1e-15

type t = {
  cell : Cell.t;
  edge : [ `Rise | `Fall ];
  ref_moments : Moments.summary;
  n_mc : int;
  (* Local-interpolation grids (primary evaluation path). *)
  grid_mu : Interpolate.Grid2d.t;
  grid_sigma : Interpolate.Grid2d.t;
  grid_gamma : Interpolate.Grid2d.t;
  grid_kappa : Interpolate.Grid2d.t;
  (* Global parametric surfaces in the literal eq. (2)/(3) shapes. *)
  mu : Interpolate.Surface.t;
  sigma : Interpolate.Surface.t;
  gamma : Interpolate.Surface.t;
  kappa : Interpolate.Surface.t;
  (* Training span of (ΔS, ΔC); evaluation clamps into it. *)
  ds_range : float * float;
  dc_range : float * float;
}

let grid_of table f =
  Interpolate.Grid2d.create ~xs:table.Characterize.slews
    ~ys:table.Characterize.loads
    ~values:(Array.map (Array.map f) table.Characterize.points)

let fit (table : Characterize.table) =
  let points = ref [] and mus = ref [] and sigmas = ref [] in
  let gammas = ref [] and kappas = ref [] in
  Array.iter
    (fun row ->
      Array.iter
        (fun (p : Characterize.point) ->
          points := (ds_of p.slew, dc_of p.load) :: !points;
          mus := p.moments.Moments.mean :: !mus;
          sigmas := p.moments.Moments.std :: !sigmas;
          gammas := p.moments.Moments.skewness :: !gammas;
          kappas := p.moments.Moments.kurtosis :: !kappas)
        row)
    table.Characterize.points;
  let points = Array.of_list !points in
  let range f =
    Array.fold_left
      (fun (lo, hi) p -> (Float.min lo (f p), Float.max hi (f p)))
      (infinity, neg_infinity) points
  in
  let arr l = Array.of_list !l in
  let ref_point =
    try Characterize.reference_point table
    with Invalid_argument _ ->
      (* Grids that omit the exact reference point fall back to the
         closest one. *)
      Characterize.point_at table ~slew:reference_slew ~load:reference_load
  in
  let moment f = grid_of table (fun p -> f p.Characterize.moments) in
  {
    cell = table.Characterize.cell;
    edge = table.Characterize.edge;
    ref_moments = ref_point.Characterize.moments;
    n_mc = table.Characterize.n_mc;
    grid_mu = moment (fun m -> m.Moments.mean);
    grid_sigma = moment (fun m -> m.Moments.std);
    grid_gamma = moment (fun m -> m.Moments.skewness);
    grid_kappa = moment (fun m -> m.Moments.kurtosis);
    mu = Interpolate.Surface.fit_bilinear ~points ~values:(arr mus);
    sigma = Interpolate.Surface.fit_bilinear ~points ~values:(arr sigmas);
    gamma = Interpolate.Surface.fit_cubic ~points ~values:(arr gammas);
    kappa = Interpolate.Surface.fit_cubic ~points ~values:(arr kappas);
    ds_range = range fst;
    dc_range = range snd;
  }

let cell t = t.cell
let edge t = t.edge
let reference_moments t = t.ref_moments

let clamp (lo, hi) v = Float.max lo (Float.min hi v)

let physical ~n ~mu ~sigma ~gamma ~kappa : Moments.summary =
  {
    n;
    mean = mu;
    std = Float.max 1e-15 sigma;
    skewness = Float.max (-2.0) (Float.min 8.0 gamma);
    kurtosis = Float.max 1.0 (Float.min 40.0 kappa);
  }

let moments_at t ~slew ~load : Moments.summary =
  physical ~n:t.n_mc
    ~mu:(Interpolate.Grid2d.eval t.grid_mu slew load)
    ~sigma:(Interpolate.Grid2d.eval t.grid_sigma slew load)
    ~gamma:(Interpolate.Grid2d.eval t.grid_gamma slew load)
    ~kappa:(Interpolate.Grid2d.eval t.grid_kappa slew load)

let moments_at_surface t ~slew ~load : Moments.summary =
  let ds = clamp t.ds_range (ds_of slew) and dc = clamp t.dc_range (dc_of load) in
  physical ~n:t.n_mc
    ~mu:(Interpolate.Surface.eval t.mu ds dc)
    ~sigma:(Interpolate.Surface.eval t.sigma ds dc)
    ~gamma:(Interpolate.Surface.eval t.gamma ds dc)
    ~kappa:(Interpolate.Surface.eval t.kappa ds dc)

let surfaces_r2 t =
  ( Interpolate.Surface.r2 t.mu,
    Interpolate.Surface.r2 t.sigma,
    Interpolate.Surface.r2 t.gamma,
    Interpolate.Surface.r2 t.kappa )

(* ----- serialisation ----- *)

let floats_line prefix a =
  prefix ^ " "
  ^ String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.9g") a))

let grid_lines prefix g =
  let xs = Interpolate.Grid2d.xs g and values = Interpolate.Grid2d.values g in
  Array.to_list
    (Array.mapi (fun i _ -> floats_line (Printf.sprintf "%sROW" prefix) values.(i)) xs)

let to_lines t =
  let m = t.ref_moments in
  [
    Printf.sprintf "CALIB %s %s %d" (Cell.name t.cell)
      (match t.edge with `Rise -> "RISE" | `Fall -> "FALL")
      t.n_mc;
    Printf.sprintf "REF %d %.9g %.9g %.9g %.9g" m.Moments.n m.Moments.mean
      m.Moments.std m.Moments.skewness m.Moments.kurtosis;
    Printf.sprintf "RANGE %.9g %.9g %.9g %.9g" (fst t.ds_range) (snd t.ds_range)
      (fst t.dc_range) (snd t.dc_range);
    floats_line "AXIS_S" (Interpolate.Grid2d.xs t.grid_mu);
    floats_line "AXIS_C" (Interpolate.Grid2d.ys t.grid_mu);
  ]
  @ grid_lines "MU" t.grid_mu
  @ grid_lines "SIGMA" t.grid_sigma
  @ grid_lines "GAMMA" t.grid_gamma
  @ grid_lines "KAPPA" t.grid_kappa
  @ [
      floats_line "SURF_MU" (Interpolate.Surface.coefficients t.mu);
      floats_line "SURF_SIGMA" (Interpolate.Surface.coefficients t.sigma);
      floats_line "SURF_GAMMA" (Interpolate.Surface.coefficients t.gamma);
      floats_line "SURF_KAPPA" (Interpolate.Surface.coefficients t.kappa);
      "ENDCALIB";
    ]

(* Rebuild a Surface from stored coefficients by refitting on synthetic
   points generated from those exact coefficients (bilinear: 4 coeffs,
   cubic: 8). *)
let surface_of_coeffs coeffs =
  let bilinear = Array.length coeffs = 4 in
  let eval ds dc =
    if bilinear then
      coeffs.(0) +. (coeffs.(1) *. ds) +. (coeffs.(2) *. dc)
      +. (coeffs.(3) *. ds *. dc)
    else
      coeffs.(0) +. (coeffs.(1) *. ds) +. (coeffs.(2) *. dc)
      +. (coeffs.(3) *. ds *. ds)
      +. (coeffs.(4) *. dc *. dc)
      +. (coeffs.(5) *. ds *. ds *. ds)
      +. (coeffs.(6) *. dc *. dc *. dc)
      +. (coeffs.(7) *. ds *. dc)
  in
  let base = [| 0.0; 1.0; 2.0; 3.5; 5.0; 7.0; 11.0; 13.0; 17.0 |] in
  let points =
    Array.concat
      (Array.to_list
         (Array.map (fun ds -> Array.map (fun dc -> (ds, dc)) base) base))
  in
  let values = Array.map (fun (ds, dc) -> eval ds dc) points in
  if bilinear then Interpolate.Surface.fit_bilinear ~points ~values
  else Interpolate.Surface.fit_cubic ~points ~values

let of_lines lines =
  let fail msg = failwith ("Calibration.of_lines: " ^ msg) in
  let floats_of rest = Array.of_list (List.map float_of_string rest) in
  let take_prefixed prefix lines =
    let rec go acc = function
      | line :: rest when String.length line >= String.length prefix
                          && String.sub line 0 (String.length prefix) = prefix ->
        (match String.split_on_char ' ' line with
        | _ :: values -> go (floats_of values :: acc) rest
        | [] -> fail "empty line")
      | rest -> (List.rev acc, rest)
    in
    go [] lines
  in
  match lines with
  | header :: ref_line :: range_l :: axis_s :: axis_c :: rest ->
    let cell, edge, n_mc =
      match String.split_on_char ' ' header with
      | [ "CALIB"; name; "RISE"; n ] -> (Cell.of_name name, `Rise, int_of_string n)
      | [ "CALIB"; name; "FALL"; n ] -> (Cell.of_name name, `Fall, int_of_string n)
      | _ -> fail "bad CALIB header"
    in
    let ref_moments =
      match String.split_on_char ' ' ref_line with
      | [ "REF"; n; mean; std; skew; kurt ] ->
        {
          Moments.n = int_of_string n;
          mean = float_of_string mean;
          std = float_of_string std;
          skewness = float_of_string skew;
          kurtosis = float_of_string kurt;
        }
      | _ -> fail "bad REF line"
    in
    let ds_range, dc_range =
      match String.split_on_char ' ' range_l with
      | [ "RANGE"; a; b; c; d ] ->
        ( (float_of_string a, float_of_string b),
          (float_of_string c, float_of_string d) )
      | _ -> fail "bad RANGE line"
    in
    let axis keyword line =
      match String.split_on_char ' ' line with
      | k :: rest when k = keyword -> floats_of rest
      | _ -> fail (Printf.sprintf "expected %s" keyword)
    in
    let xs = axis "AXIS_S" axis_s and ys = axis "AXIS_C" axis_c in
    let grid rows =
      Interpolate.Grid2d.create ~xs ~ys ~values:(Array.of_list rows)
    in
    let mu_rows, rest = take_prefixed "MUROW" rest in
    let sigma_rows, rest = take_prefixed "SIGMAROW" rest in
    let gamma_rows, rest = take_prefixed "GAMMAROW" rest in
    let kappa_rows, rest = take_prefixed "KAPPAROW" rest in
    let surf keyword line =
      match String.split_on_char ' ' line with
      | k :: values when k = keyword -> surface_of_coeffs (floats_of values)
      | _ -> fail (Printf.sprintf "expected %s" keyword)
    in
    (match rest with
    | [ sm; ss; sg; sk; "ENDCALIB" ] ->
      {
        cell;
        edge;
        ref_moments;
        n_mc;
        grid_mu = grid mu_rows;
        grid_sigma = grid sigma_rows;
        grid_gamma = grid gamma_rows;
        grid_kappa = grid kappa_rows;
        mu = surf "SURF_MU" sm;
        sigma = surf "SURF_SIGMA" ss;
        gamma = surf "SURF_GAMMA" sg;
        kappa = surf "SURF_KAPPA" sk;
        ds_range;
        dc_range;
      }
    | _ -> fail "bad surface block")
  | _ -> fail "truncated calibration block"
