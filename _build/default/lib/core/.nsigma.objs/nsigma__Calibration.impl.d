lib/core/calibration.ml: Array Float List Nsigma_liberty Nsigma_stats Printf String
