lib/core/sigma_ext.ml: Calibration Cell_model Float Model Nsigma_stats
