lib/core/calibration.mli: Nsigma_liberty Nsigma_stats
