lib/core/wire_model.mli: Nsigma_liberty
