lib/core/wire_lab.ml: Array Float List Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_sta Nsigma_stats Wire_model
