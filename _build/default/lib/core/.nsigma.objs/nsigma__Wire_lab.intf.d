lib/core/wire_lab.mli: Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_stats Wire_model
