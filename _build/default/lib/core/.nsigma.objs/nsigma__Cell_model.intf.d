lib/core/cell_model.mli: Format Nsigma_stats
