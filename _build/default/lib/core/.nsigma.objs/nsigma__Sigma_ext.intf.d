lib/core/sigma_ext.mli: Cell_model Model Nsigma_liberty Nsigma_stats
