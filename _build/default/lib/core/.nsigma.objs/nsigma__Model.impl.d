lib/core/model.ml: Array Calibration Cell_model Float Fun Hashtbl List Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_sta Nsigma_stats Printf String Wire_lab Wire_model
