lib/core/wire_model.ml: Array Float List Nsigma_liberty Nsigma_stats Option Printf String
