lib/core/model.mli: Calibration Cell_model Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_sta Wire_model
