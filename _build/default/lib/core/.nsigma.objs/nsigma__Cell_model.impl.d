lib/core/cell_model.ml: Array Float Format List Nsigma_stats
