(** High-sigma extension of the N-sigma model.

    Table I covers the −3σ…+3σ levels the paper evaluates; its Section
    III notes that "in the rigorous situation, the sigma level can be
    extended to ±6σ to keep the stability and avoid timing failure".
    Empirical ±6σ quantiles are unobservable at characterisation sample
    counts (P(+6σ) misses 10⁹-scale Monte-Carlo), so the extension has to
    be analytic:

    - inside [−3, 3], fractional levels interpolate the fitted Table-I
      quantiles (monotone piecewise-linear between integer levels);
    - beyond ±3, a log-skew-normal surrogate is moment-fitted to
      [μ, σ, γ] and its tail is {e spliced} to the Table-I value at ±3σ
      with a multiplicative offset, so the extension is continuous and
      inherits the fitted model's accuracy where it was trained while
      borrowing the surrogate's tail shape where it wasn't. *)

val quantile :
  Cell_model.t -> Nsigma_stats.Moments.summary -> level:float -> float
(** Delay quantile at an arbitrary sigma level in [−6, 6].
    @raise Invalid_argument outside that range. *)

val probability : level:float -> float
(** Gaussian tail probability of a level, e.g. 6.0 ↦ 1 − 9.9e−10. *)

val cell_quantile :
  Model.t ->
  Nsigma_liberty.Cell.t ->
  edge:[ `Rise | `Fall ] ->
  input_slew:float ->
  load_cap:float ->
  level:float ->
  float
(** Operating-condition-calibrated high-sigma cell quantile. *)
