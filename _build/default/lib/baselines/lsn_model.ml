module D = Nsigma_stats.Distribution
module Quantile = Nsigma_stats.Quantile

type t = D.Log_skew_normal.t

let fit samples =
  if Array.length samples < 8 then invalid_arg "Lsn_model.fit: too few samples";
  D.Log_skew_normal.fit_samples samples

let quantile_p t p = D.Log_skew_normal.quantile t p

let quantile t ~sigma =
  quantile_p t (Quantile.probability_of_sigma (float_of_int sigma))

let of_moments_of_log m = { D.Log_skew_normal.log_sn = D.Skew_normal.fit_moments m }

let fit_moments m = D.Log_skew_normal.fit_moments m
