module Rng = Nsigma_stats.Rng

type layer = {
  weights : float array array;  (* [out][in] *)
  bias : float array;
  w_vel : float array array;  (* momentum buffers *)
  b_vel : float array;
}

type t = {
  layers : layer array;
  mutable in_mean : float array;
  mutable in_std : float array;
  mutable out_mean : float;
  mutable out_std : float;
}

let create ?(seed = 3) ~layers () =
  (match layers with
  | _ :: _ :: _ when List.nth layers (List.length layers - 1) = 1 -> ()
  | _ -> invalid_arg "Nn.create: need >= 2 layers ending in width 1");
  let g = Rng.create ~seed in
  let dims = Array.of_list layers in
  let make_layer n_in n_out =
    (* Xavier-ish initialisation. *)
    let scale = sqrt (2.0 /. float_of_int (n_in + n_out)) in
    {
      weights =
        Array.init n_out (fun _ ->
            Array.init n_in (fun _ -> Rng.gaussian g *. scale));
      bias = Array.make n_out 0.0;
      w_vel = Array.make_matrix n_out n_in 0.0;
      b_vel = Array.make n_out 0.0;
    }
  in
  {
    layers =
      Array.init (Array.length dims - 1) (fun i -> make_layer dims.(i) dims.(i + 1));
    in_mean = Array.make dims.(0) 0.0;
    in_std = Array.make dims.(0) 1.0;
    out_mean = 0.0;
    out_std = 1.0;
  }

(* Forward pass returning all layer activations (normalised domain). *)
let forward_full t x =
  let n_layers = Array.length t.layers in
  let acts = Array.make (n_layers + 1) [||] in
  acts.(0) <- x;
  for l = 0 to n_layers - 1 do
    let layer = t.layers.(l) in
    let z =
      Array.mapi
        (fun o row ->
          let s = ref layer.bias.(o) in
          Array.iteri (fun i w -> s := !s +. (w *. acts.(l).(i))) row;
          !s)
        layer.weights
    in
    (* Hidden layers tanh; output linear. *)
    acts.(l + 1) <- (if l = n_layers - 1 then z else Array.map tanh z)
  done;
  acts

let normalize_input t x =
  Array.mapi (fun i v -> (v -. t.in_mean.(i)) /. t.in_std.(i)) x

let predict t x =
  let acts = forward_full t (normalize_input t x) in
  (acts.(Array.length t.layers).(0) *. t.out_std) +. t.out_mean

type training_report = { epochs : int; final_loss : float }

let train ?(epochs = 400) ?(batch = 32) ?(learning_rate = 0.01)
    ?(momentum = 0.9) ?(seed = 5) t ~inputs ~targets =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Nn.train: empty training set";
  if Array.length targets <> n then invalid_arg "Nn.train: target size mismatch";
  let dim = Array.length t.in_mean in
  Array.iter
    (fun x -> if Array.length x <> dim then invalid_arg "Nn.train: feature size mismatch")
    inputs;
  (* Fit normalisation. *)
  let nf = float_of_int n in
  for i = 0 to dim - 1 do
    let mean = Array.fold_left (fun a x -> a +. x.(i)) 0.0 inputs /. nf in
    let var =
      Array.fold_left (fun a x -> a +. ((x.(i) -. mean) ** 2.0)) 0.0 inputs /. nf
    in
    t.in_mean.(i) <- mean;
    t.in_std.(i) <- Float.max 1e-12 (sqrt var)
  done;
  t.out_mean <- Array.fold_left ( +. ) 0.0 targets /. nf;
  t.out_std <-
    Float.max 1e-12
      (sqrt
         (Array.fold_left (fun a y -> a +. ((y -. t.out_mean) ** 2.0)) 0.0 targets
         /. nf));
  let xs = Array.map (normalize_input t) inputs in
  let ys = Array.map (fun y -> (y -. t.out_mean) /. t.out_std) targets in
  let g = Rng.create ~seed in
  let indices = Array.init n Fun.id in
  let n_layers = Array.length t.layers in
  let final_loss = ref 0.0 in
  for _epoch = 1 to epochs do
    Rng.shuffle g indices;
    final_loss := 0.0;
    let b = ref 0 in
    while !b < n do
      let batch_idx = Array.sub indices !b (min batch (n - !b)) in
      b := !b + batch;
      let bsize = float_of_int (Array.length batch_idx) in
      (* Accumulate gradients over the batch. *)
      let w_grad =
        Array.map (fun l -> Array.map (Array.map (fun _ -> 0.0)) l.weights) t.layers
      in
      let b_grad = Array.map (fun l -> Array.map (fun _ -> 0.0) l.bias) t.layers in
      Array.iter
        (fun idx ->
          let acts = forward_full t xs.(idx) in
          let err = acts.(n_layers).(0) -. ys.(idx) in
          final_loss := !final_loss +. (err *. err);
          (* Backprop. *)
          let delta = ref [| err |] in
          for l = n_layers - 1 downto 0 do
            let layer = t.layers.(l) in
            let a_in = acts.(l) in
            Array.iteri
              (fun o d ->
                b_grad.(l).(o) <- b_grad.(l).(o) +. d;
                Array.iteri
                  (fun i a -> w_grad.(l).(o).(i) <- w_grad.(l).(o).(i) +. (d *. a))
                  a_in)
              !delta;
            if l > 0 then begin
              let next =
                Array.mapi
                  (fun i a ->
                    let s = ref 0.0 in
                    Array.iteri
                      (fun o d -> s := !s +. (d *. layer.weights.(o).(i)))
                      !delta;
                    (* derivative of tanh at the activation value *)
                    !s *. (1.0 -. (a *. a)))
                  acts.(l)
              in
              delta := next
            end
          done)
        batch_idx;
      (* SGD with momentum. *)
      Array.iteri
        (fun l layer ->
          Array.iteri
            (fun o row ->
              Array.iteri
                (fun i _ ->
                  let grad = w_grad.(l).(o).(i) /. bsize in
                  layer.w_vel.(o).(i) <-
                    (momentum *. layer.w_vel.(o).(i)) -. (learning_rate *. grad);
                  row.(i) <- row.(i) +. layer.w_vel.(o).(i))
                row;
              let grad = b_grad.(l).(o) /. bsize in
              layer.b_vel.(o) <-
                (momentum *. layer.b_vel.(o)) -. (learning_rate *. grad);
              layer.bias.(o) <- layer.bias.(o) +. layer.b_vel.(o))
            layer.weights)
        t.layers
    done
  done;
  { epochs; final_loss = !final_loss /. float_of_int n }
