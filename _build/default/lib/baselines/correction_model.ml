module Technology = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Cell = Nsigma_liberty.Cell
module Moments = Nsigma_stats.Moments
module Rng = Nsigma_stats.Rng
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rc_sim = Nsigma_spice.Rc_sim
module Provider = Nsigma_sta.Provider

type t = {
  residual : float;  (** mean_sim / d2m, averaged over the reference set *)
  derate : float;  (** per-sigma relative variability *)
}

let calibrate ?(n_reference = 30) ?(seed = 23) tech (_library : Library.t) =
  let g = Rng.create ~seed in
  let strengths = [| 1; 2; 4; 8 |] in
  let ratios = ref [] and vars = ref [] in
  for _ = 1 to n_reference do
    let driver_cell = Cell.make Cell.Inv ~strength:(Rng.choose g strengths) in
    let load_cell = Cell.make Cell.Inv ~strength:(Rng.choose g strengths) in
    let tree = Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g) in
    let tap = tree.Nsigma_rcnet.Rctree.taps.(0) in
    let load_caps = [ (tap, Cell.input_cap tech load_cell) ] in
    let nominal_arc = Cell.arc tech Variation.nominal driver_cell ~output_edge:`Rise in
    match
      Rc_sim.simulate ~steps:200 tech ~driver:nominal_arc ~tree ~load_caps
        ~input_slew:Provider.input_slew_default
    with
    | exception Failure _ -> ()
    | nominal ->
      let wire_nom =
        Array.to_list nominal.Rc_sim.tap_delays
        |> List.assoc tap
      in
      let tree_loaded =
        Nsigma_rcnet.Rctree.add_cap tree tap (Cell.input_cap tech load_cell)
      in
      let d2m = Elmore.d2m_at tree_loaded tap in
      if d2m > 0.0 && wire_nom > 0.0 then begin
        ratios := (wire_nom /. d2m) :: !ratios;
        (* Small MC for the global variability derate. *)
        let samples = ref [] in
        for _ = 1 to 64 do
          let sample = Variation.draw tech g in
          let arc = Cell.arc tech sample driver_cell ~output_edge:`Rise in
          let tree_v = Wire_gen.vary tech sample tree in
          match
            Rc_sim.simulate ~steps:160 tech ~driver:arc ~tree:tree_v ~load_caps
              ~input_slew:Provider.input_slew_default
          with
          | r -> samples := (Array.to_list r.Rc_sim.tap_delays |> List.assoc tap) :: !samples
          | exception Failure _ -> ()
        done;
        let m = Moments.summary_of_array (Array.of_list !samples) in
        if m.Moments.mean > 0.0 then
          vars := (m.Moments.std /. m.Moments.mean) :: !vars
      end
  done;
  let avg l =
    match l with
    | [] -> invalid_arg "Correction_model.calibrate: no reference runs succeeded"
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  { residual = avg !ratios; derate = avg !vars }

let wire_delay t ~tree ~tap ~sigma =
  let d2m = Elmore.d2m_at tree tap in
  t.residual *. d2m *. (1.0 +. (float_of_int sigma *. t.derate))

let table_edge = function Provider.Rise -> `Rise | Provider.Fall -> `Fall

let provider t library ~sigma =
  let n = float_of_int sigma in
  let find gate edge =
    Library.find library gate.Nsigma_netlist.Netlist.cell ~edge:(table_edge edge)
  in
  {
    Provider.label = Printf.sprintf "correction(%+d)" sigma;
    cell_delay =
      (fun gate ~edge ~input_slew ~load_cap ->
        let m =
          Characterize.moments_at (find gate edge) ~slew:input_slew ~load:load_cap
        in
        m.Moments.mean +. (n *. m.Moments.std));
    cell_out_slew =
      (fun gate ~edge ~input_slew ~load_cap ->
        Characterize.out_slew_at (find gate edge) ~slew:input_slew ~load:load_cap);
    wire_delay = (fun ~net:_ ~driver:_ ~sink:_ ~tree ~tap -> wire_delay t ~tree ~tap ~sigma);
    wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        sqrt
          ((slew_at_root *. slew_at_root)
          +. (2.2 *. wire_delay *. 2.2 *. wire_delay)));
  }

let factors t = (t.residual, t.derate)
