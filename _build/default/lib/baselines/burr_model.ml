module D = Nsigma_stats.Distribution
module Quantile = Nsigma_stats.Quantile

type t = D.Burr_xii.t

let fit samples = D.Burr_xii.fit_samples samples

let fit_quantiles targets = D.Burr_xii.fit_quantiles targets

let quantile_p t p = D.Burr_xii.quantile t p

let quantile t ~sigma =
  quantile_p t (Quantile.probability_of_sigma (float_of_int sigma))

let params (t : t) = (t.D.Burr_xii.lambda, t.D.Burr_xii.c, t.D.Burr_xii.k)
