module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Cell = Nsigma_liberty.Cell
module Moments = Nsigma_stats.Moments
module Elmore = Nsigma_rcnet.Elmore
module Provider = Nsigma_sta.Provider

let table_edge = function Provider.Rise -> `Rise | Provider.Fall -> `Fall

(* A sign-off corner must cover the worst cell in the library, so the
   derate is set from a high quantile of the per-cell delay variability
   at the reference condition — which is precisely why a flat-derate
   timer over-margins typical paths (the pessimism the paper's Table III
   quantifies at ~31%). *)
let library_derate library =
  let ratios =
    List.filter_map
      (fun (cell, edge) ->
        let table = Library.find library cell ~edge in
        let p =
          Characterize.point_at table ~slew:Characterize.reference_slew
            ~load:(Cell.fo4_load (Library.tech library) cell)
        in
        let m = p.Characterize.moments in
        if m.Moments.mean > 0.0 then Some (m.Moments.std /. m.Moments.mean)
        else None)
      (Library.cells library)
  in
  match ratios with
  | [] -> 0.10
  | _ ->
    let sorted = Array.of_list ratios in
    Array.sort Float.compare sorted;
    (* 95th percentile of per-cell variability. *)
    sorted.(min (Array.length sorted - 1) (95 * Array.length sorted / 100))

let provider library ~sigma ?(wire_derate = 0.10) () =
  let n = float_of_int sigma in
  let derate = library_derate library in
  let find gate edge =
    Library.find library gate.Nsigma_netlist.Netlist.cell ~edge:(table_edge edge)
  in
  {
    Provider.label = Printf.sprintf "primetime-like(%+d)" sigma;
    cell_delay =
      (fun gate ~edge ~input_slew ~load_cap ->
        let m =
          Characterize.moments_at (find gate edge) ~slew:input_slew ~load:load_cap
        in
        m.Moments.mean *. (1.0 +. (n *. derate)));
    cell_out_slew =
      (fun gate ~edge ~input_slew ~load_cap ->
        (* Corner libraries carry corner-slow transitions. *)
        Characterize.out_slew_at (find gate edge) ~slew:input_slew ~load:load_cap
        *. (1.0 +. (n *. derate)));
    wire_delay =
      (fun ~net:_ ~driver:_ ~sink:_ ~tree ~tap ->
        (1.0 +. (n *. wire_derate)) *. Elmore.delay_at tree tap);
    wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        sqrt
          ((slew_at_root *. slew_at_root)
          +. (2.2 *. wire_delay *. 2.2 *. wire_delay)));
  }
