(** The correction-factor method of Sharma et al. [8].

    Every RC tree gets one multiplicative correction of its Elmore delay,
    calibrated against a more accurate reference — here the D2M
    two-moment metric plus a global residual factor fitted against a
    small set of reference transient simulations (playing the role of the
    PrimeTime reports the paper's authors calibrate to).  Variability is
    handled by a single global derate, not per-cell coefficients — which
    is precisely the gap the N-sigma wire model closes. *)

type t

val calibrate :
  ?n_reference:int ->
  ?seed:int ->
  Nsigma_process.Technology.t ->
  Nsigma_liberty.Library.t ->
  t
(** Fit the global residual factor on [n_reference] (default 30) random
    driver/wire/load configurations simulated nominally, and the global
    variability derate on their Monte-Carlo populations (64 samples
    each). *)

val wire_delay : t -> tree:Nsigma_rcnet.Rctree.t -> tap:int -> sigma:int -> float
(** Corrected Elmore with the global derate at the requested level. *)

val provider :
  t -> Nsigma_liberty.Library.t -> sigma:int -> Nsigma_sta.Provider.t
(** Full-path provider: LUT μ+nσ cells, corrected wires. *)

val factors : t -> float * float
(** (mean correction, per-sigma derate) — for reporting. *)
