(** The machine-learning wire timing baseline of Cheng et al. [9].

    A small MLP regresses the ratio (nσ wire delay)/(Elmore) from net
    features — the first two impulse-response moments, total R and C,
    topology size, driver strength/stack and sink load — trained on
    Monte-Carlo wire populations over random driver/net/load
    configurations.  Path delay then combines LUT cells (μ + nσ per
    stage, as the paper describes for this method) with the predicted
    wires.  The training cost and memory appetite the paper criticises
    are faithfully reproduced in miniature. *)

type t

val feature_names : string list

val features :
  Nsigma_process.Technology.t ->
  tree:Nsigma_rcnet.Rctree.t ->
  tap:int ->
  driver:Nsigma_liberty.Cell.t ->
  load_cap:float ->
  float array

type training_stats = {
  n_configs : int;  (** training configurations generated *)
  train_seconds : float;
  final_loss : float;
}

val train :
  ?n_configs:int ->
  ?mc_per_config:int ->
  ?seed:int ->
  Nsigma_process.Technology.t ->
  sigma:int ->
  t * training_stats
(** Generate [n_configs] (default 150) random wire configurations, run
    [mc_per_config] (default 200) Monte-Carlo transients on each, and fit
    the network to the nσ quantile ratios. *)

val wire_delay :
  t -> tree:Nsigma_rcnet.Rctree.t -> tap:int ->
  driver:Nsigma_liberty.Cell.t -> load_cap:float -> float
(** Predicted nσ wire delay (the sigma level is baked in at training). *)

val provider :
  t -> Nsigma_liberty.Library.t -> sigma:int -> Nsigma_sta.Provider.t
