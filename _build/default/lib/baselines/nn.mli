(** Minimal multilayer perceptron, the substrate for the ML-based wire
    timing baseline of Cheng et al. [9].

    Dense layers with tanh activations (linear output), trained by
    mini-batch SGD with momentum on mean-squared error.  Inputs and the
    target are z-normalised internally from the training set.  Written
    from scratch — no external ML dependency exists in this environment,
    and the baseline only needs a small regressor. *)

type t

val create : ?seed:int -> layers:int list -> unit -> t
(** [layers] gives the width of every layer including input and output,
    e.g. [[8; 16; 16; 1]].  Output dimension must be 1. *)

val predict : t -> float array -> float
(** Forward pass on one feature vector (raw, unnormalised scale). *)

type training_report = {
  epochs : int;
  final_loss : float;  (** MSE on the (normalised) training set *)
}

val train :
  ?epochs:int ->
  ?batch:int ->
  ?learning_rate:float ->
  ?momentum:float ->
  ?seed:int ->
  t ->
  inputs:float array array ->
  targets:float array ->
  training_report
(** Fit in place.  Defaults: 400 epochs, batch 32, lr 0.01, momentum
    0.9.  @raise Invalid_argument on shape mismatches. *)
