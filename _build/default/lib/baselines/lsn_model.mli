(** The log-skew-normal cell delay model of Balef et al. [12].

    Fit: take the natural log of the delay sample, fit an Azzalini
    skew-normal to it by the method of moments; the delay quantile at
    level p is exp of the skew-normal quantile.  Known failure mode
    (visible in Table II of the paper): when the log-sample skewness
    exceeds the skew-normal family's representable ±0.9953 the fit
    saturates and tail quantiles drift. *)

type t

val fit : float array -> t
(** @raise Invalid_argument on non-positive samples or n < 8. *)

val quantile : t -> sigma:int -> float
(** nσ sigma-level delay. *)

val quantile_p : t -> float -> float
(** Arbitrary-probability quantile. *)

val of_moments_of_log : Nsigma_stats.Moments.summary -> t
(** Build directly from moments of log-delay (for LUT-driven flows). *)

val fit_moments : Nsigma_stats.Moments.summary -> t
(** Deploy from an LVF-style moment table: fit the LSN so its
    linear-domain mean, std and skewness match the characterised moments
    (raw samples are not available downstream of characterisation). *)
