module Technology = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Characterize = Nsigma_liberty.Characterize
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rc_sim = Nsigma_spice.Rc_sim
module Provider = Nsigma_sta.Provider

type t = { net : Nn.t; sigma : int }

let feature_names =
  [
    "log_elmore"; "log_sqrt_m2"; "log_total_res"; "log_total_cap"; "n_nodes";
    "driver_strength"; "driver_stack"; "log_load_cap";
  ]

let features tech ~tree ~tap ~driver ~load_cap =
  ignore tech;
  let loaded = Rctree.add_cap tree tap load_cap in
  let elmore = Elmore.delay_at loaded tap in
  let m2 = (Elmore.second_moments loaded).(tap) in
  [|
    log (Float.max 1e-15 elmore);
    log (Float.max 1e-15 (sqrt (Float.max 0.0 m2)));
    log (Float.max 1e-3 (Rctree.total_res tree));
    log (Float.max 1e-20 (Rctree.total_cap tree));
    float_of_int (Rctree.n_nodes tree);
    float_of_int driver.Cell.strength;
    float_of_int (Cell.stack_count driver);
    log (Float.max 1e-20 load_cap);
  |]

type training_stats = {
  n_configs : int;
  train_seconds : float;
  final_loss : float;
}

let train ?(n_configs = 150) ?(mc_per_config = 200) ?(seed = 31) tech ~sigma =
  let t_start = Unix.gettimeofday () in
  let g = Rng.create ~seed in
  let strengths = [| 1; 2; 4; 8 |] in
  let kinds = [| Cell.Inv; Cell.Nand2; Cell.Nor2 |] in
  let inputs = ref [] and targets = ref [] in
  for _ = 1 to n_configs do
    let driver =
      Cell.make (Rng.choose g kinds) ~strength:(Rng.choose g strengths)
    in
    let load_cell = Cell.make Cell.Inv ~strength:(Rng.choose g strengths) in
    let load_cap = Cell.input_cap tech load_cell in
    let tree = Wire_gen.random_tree tech Wire_gen.default_spec (Rng.split g) in
    let tap = tree.Rctree.taps.(0) in
    let samples = ref [] in
    for _ = 1 to mc_per_config do
      let sample = Variation.draw tech g in
      let arc = Cell.arc tech sample driver ~output_edge:`Rise in
      let tree_v = Wire_gen.vary tech sample tree in
      match
        Rc_sim.simulate ~steps:160 tech ~driver:arc ~tree:tree_v
          ~load_caps:[ (tap, load_cap) ] ~input_slew:Provider.input_slew_default
      with
      | r -> samples := (Array.to_list r.Rc_sim.tap_delays |> List.assoc tap) :: !samples
      | exception Failure _ -> ()
    done;
    if List.length !samples > mc_per_config / 2 then begin
      let q =
        Quantile.of_sample
          (Array.of_list !samples)
          (Quantile.probability_of_sigma (float_of_int sigma))
      in
      let loaded = Rctree.add_cap tree tap load_cap in
      let elmore = Elmore.delay_at loaded tap in
      if elmore > 0.0 && q > 0.0 then begin
        inputs := features tech ~tree ~tap ~driver ~load_cap :: !inputs;
        targets := (q /. elmore) :: !targets
      end
    end
  done;
  let inputs = Array.of_list !inputs and targets = Array.of_list !targets in
  let net = Nn.create ~layers:[ List.length feature_names; 16; 12; 1 ] () in
  let report = Nn.train ~epochs:600 net ~inputs ~targets in
  ( { net; sigma },
    {
      n_configs = Array.length inputs;
      train_seconds = Unix.gettimeofday () -. t_start;
      final_loss = report.Nn.final_loss;
    } )

let wire_delay t ~tree ~tap ~driver ~load_cap =
  let x =
    features Technology.default_28nm ~tree ~tap ~driver ~load_cap
  in
  let loaded = Rctree.add_cap tree tap load_cap in
  let elmore = Elmore.delay_at loaded tap in
  let ratio = Float.max 0.1 (Nn.predict t.net x) in
  ratio *. elmore

let table_edge = function Provider.Rise -> `Rise | Provider.Fall -> `Fall

let provider t library ~sigma =
  let n = float_of_int sigma in
  let tech = Library.tech library in
  let find gate edge =
    Library.find library gate.Nsigma_netlist.Netlist.cell ~edge:(table_edge edge)
  in
  {
    Provider.label = Printf.sprintf "ml-based(%+d)" sigma;
    cell_delay =
      (fun gate ~edge ~input_slew ~load_cap ->
        let m =
          Characterize.moments_at (find gate edge) ~slew:input_slew ~load:load_cap
        in
        m.Moments.mean +. (n *. m.Moments.std));
    cell_out_slew =
      (fun gate ~edge ~input_slew ~load_cap ->
        Characterize.out_slew_at (find gate edge) ~slew:input_slew ~load:load_cap);
    wire_delay =
      (fun ~net ~driver ~sink:_ ~tree ~tap ->
        ignore net;
        match driver with
        | None -> Elmore.delay_at tree tap
        | Some d ->
          let load_cap = Cell.input_cap tech (Cell.make Cell.Inv ~strength:1) in
          wire_delay t ~tree ~tap ~driver:d ~load_cap)
    ;
    wire_slew_degrade =
      (fun ~wire_delay ~slew_at_root ->
        sqrt
          ((slew_at_root *. slew_at_root)
          +. (2.2 *. wire_delay *. 2.2 *. wire_delay)));
  }
