(** The Burr type-XII cell delay model of Moshrefi et al. [13].

    The three parameters (λ, c, k) are fitted to the empirical sigma-level
    quantiles by derivative-free search.  The paper's Table II shows this
    model systematically missing near-threshold tails (10–16% at ±3σ);
    the same behaviour reproduces here because Burr XII's polynomial tail
    cannot follow the lognormal-like delay tail. *)

type t

val fit : float array -> t
(** @raise Invalid_argument on too-small samples. *)

val fit_quantiles : (float * float) list -> t
(** Deploy from characterised (probability, quantile) pairs. *)

val quantile : t -> sigma:int -> float
val quantile_p : t -> float -> float

val params : t -> float * float * float
(** (λ, c, k). *)
