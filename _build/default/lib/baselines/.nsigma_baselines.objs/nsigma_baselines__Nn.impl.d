lib/baselines/nn.ml: Array Float Fun List Nsigma_stats
