lib/baselines/nn.mli:
