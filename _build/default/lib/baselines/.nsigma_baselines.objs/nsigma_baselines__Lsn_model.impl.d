lib/baselines/lsn_model.ml: Array Nsigma_stats
