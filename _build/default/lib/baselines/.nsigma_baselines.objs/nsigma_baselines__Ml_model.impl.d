lib/baselines/ml_model.ml: Array Float List Nn Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_sta Nsigma_stats Printf Unix
