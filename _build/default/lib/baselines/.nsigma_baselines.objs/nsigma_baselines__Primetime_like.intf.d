lib/baselines/primetime_like.mli: Nsigma_liberty Nsigma_sta
