lib/baselines/ml_model.mli: Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_sta
