lib/baselines/burr_model.ml: Nsigma_stats
