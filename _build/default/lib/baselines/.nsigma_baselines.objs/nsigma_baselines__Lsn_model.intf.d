lib/baselines/lsn_model.mli: Nsigma_stats
