lib/baselines/primetime_like.ml: Array Float List Nsigma_liberty Nsigma_netlist Nsigma_rcnet Nsigma_sta Nsigma_stats Printf
