lib/baselines/burr_model.mli:
