lib/baselines/correction_model.ml: Array List Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_sta Nsigma_stats Printf
