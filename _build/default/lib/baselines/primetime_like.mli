(** A PrimeTime-style sign-off timer [7]: deterministic corner STA with
    flat OCV derates.

    Every cell delay is the characterised mean times (1 + n·derate) with
    one global derate sized to cover the {e worst} cell in the library
    (95th percentile of per-cell σ/μ), and every wire is Elmore times a
    fixed derate.  That construction is exactly why single-corner
    sign-off over-margins typical paths — the classic pessimism the
    paper's Table III quantifies at ~31% average. *)

val library_derate : Nsigma_liberty.Library.t -> float
(** The flat per-sigma cell derate the corner uses (95th-percentile
    σ/μ over the characterised library at the reference condition). *)

val provider :
  Nsigma_liberty.Library.t ->
  sigma:int ->
  ?wire_derate:float ->
  unit ->
  Nsigma_sta.Provider.t
(** [sigma] is the guard-band level (3 for max-delay sign-off);
    [wire_derate] (default 0.10 per sigma) derates Elmore wire delays by
    (1 + n·derate). *)
