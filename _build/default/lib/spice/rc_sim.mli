(** Driver-aware transient simulation of a routed net.

    The RC tree is integrated by backward Euler on the nodal system
    (C/Δt + G)·v⁺ = (C/Δt)·v + i(t); the conductance matrix is constant,
    so it is LU-factored once per sample and reused every timestep.  The
    nonlinear driver (a cell {!Arc.t}) injects its stack current at the
    root explicitly — stable here because the current falls monotonically
    as the root charges.

    Wire delay is measured exactly as the paper does: 50% crossing at the
    tap minus 50% crossing at the driver output (root), so the driver's
    own transition time is excluded but its finite drive — the
    cell/wire interaction under study — shapes the tap waveform. *)

type result = {
  root_crossing : float;  (** absolute time the root crosses VDD/2 (s) *)
  driver_delay : float;
      (** root 50% crossing − input 50% crossing: the driver cell's delay
          into its real distributed load *)
  tap_delays : (int * float) array;
      (** per tap: (node index, tap 50% crossing − root 50% crossing) *)
  tap_slews : (int * float) array;
      (** per tap: full-swing-equivalent 20–80% transition time *)
}

val simulate :
  ?steps:int ->
  Nsigma_process.Technology.t ->
  driver:Arc.t ->
  tree:Nsigma_rcnet.Rctree.t ->
  load_caps:(int * float) list ->
  input_slew:float ->
  result
(** Drive the net with the given arc (a rising-output pull-up arc is the
    conventional choice).  [load_caps] adds capacitance at tap nodes
    (load-cell input pins).  [steps] (default 400) is the transient
    resolution. @raise Failure if a tap never crosses 50%. *)

val wire_delay :
  ?steps:int ->
  Nsigma_process.Technology.t ->
  driver:Arc.t ->
  tree:Nsigma_rcnet.Rctree.t ->
  load_caps:(int * float) list ->
  input_slew:float ->
  float
(** The first tap's wire delay — the single-sink shortcut used by the
    Fig. 7–10 experiments. *)
