module Technology = Nsigma_process.Technology

type pull = Pull_up | Pull_down

type t = {
  pull : pull;
  devices : Device.t array;
  parallel : int;
  switching : int;
  opposing : Device.t option;
  cap_intrinsic : float;
}

let make tech sample ~pull ~depth ~strength ?(parallel = 1) ?(switching = 0)
    ?(opposing_width_mult = 0.0) () =
  if depth <= 0 then invalid_arg "Arc.make: depth must be positive";
  if parallel <= 0 then invalid_arg "Arc.make: parallel must be positive";
  if switching < 0 || switching >= depth then
    invalid_arg "Arc.make: switching index out of range";
  let kind = match pull with Pull_up -> Device.Pmos | Pull_down -> Device.Nmos in
  let opposing_kind =
    match pull with Pull_up -> Device.Nmos | Pull_down -> Device.Pmos
  in
  let devices =
    Array.init depth (fun _ -> Device.make tech sample kind ~width_mult:strength)
  in
  let opposing =
    if opposing_width_mult > 0.0 then
      Some (Device.make tech sample opposing_kind ~width_mult:opposing_width_mult)
    else None
  in
  (* Drain parasitics: the output-side device of each parallel stack plus
     the opposing network's drains sit on the output node. *)
  let output_device = devices.(depth - 1) in
  let cap_intrinsic =
    (float_of_int parallel *. Device.drain_cap tech output_device)
    +. (match opposing with
       | Some d -> Device.drain_cap tech d
       | None -> 0.0)
  in
  { pull; devices; parallel; switching; opposing; cap_intrinsic }

(* Current of the series stack given the gate voltage of the switching
   device; the others are fully on.  [drop] is the total voltage across
   the stack; it divides evenly, and the source of device i sits i/n of
   the way up from the conducting rail. *)
let stack_current tech arc ~vswitch_gs ~vfull_gs ~drop =
  let n = Array.length arc.devices in
  let nf = float_of_int n in
  let vds = drop /. nf in
  if drop <= 0.0 then 0.0
  else begin
    let inv_sum = ref 0.0 in
    for i = 0 to n - 1 do
      (* Internal stack nodes stay near the conducting rail during the
         transition, so every device keeps its full gate drive; the
         drain-source drop is what divides across the stack. *)
      let vgs = if i = arc.switching then vswitch_gs else vfull_gs in
      let id = Device.current tech arc.devices.(i) ~vgs ~vds in
      inv_sum := !inv_sum +. (1.0 /. Float.max id 1e-15)
    done;
    float_of_int arc.parallel /. !inv_sum
  end

let current tech arc ~vin ~vout =
  let vdd = tech.Technology.vdd_nominal in
  let drive, short_circuit =
    match arc.pull with
    | Pull_down ->
      (* Output falls: NMOS stack conducts with gate at vin, drop = vout;
         the lumped PMOS (source at VDD, gate at vin) fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:vin ~vfull_gs:vdd ~drop:vout
      in
      let sc =
        match arc.opposing with
        | Some p -> Device.current tech p ~vgs:(vdd -. vin) ~vds:(vdd -. vout)
        | None -> 0.0
      in
      (drive, sc)
    | Pull_up ->
      (* Output rises: PMOS stack conducts with source-referred gate drive
         VDD − vin, drop = VDD − vout; the lumped NMOS fights it. *)
      let drive =
        stack_current tech arc ~vswitch_gs:(vdd -. vin) ~vfull_gs:vdd
          ~drop:(vdd -. vout)
      in
      let sc =
        match arc.opposing with
        | Some n -> Device.current tech n ~vgs:vin ~vds:vout
        | None -> 0.0
      in
      (drive, sc)
  in
  Float.max 0.0 (drive -. short_circuit)

let input_cap tech arc = Device.gate_cap tech arc.devices.(arc.switching)
