module Technology = Nsigma_process.Technology
module Rctree = Nsigma_rcnet.Rctree
module Linalg = Nsigma_stats.Linalg

type result = {
  root_crossing : float;
  driver_delay : float;
  tap_delays : (int * float) array;
  tap_slews : (int * float) array;
}

let simulate ?(steps = 400) tech ~driver ~tree ~load_caps ~input_slew =
  let vdd = tech.Technology.vdd_nominal in
  let n = Rctree.n_nodes tree in
  (* Node capacitances: wire + attached loads + driver drain parasitics. *)
  let caps = Array.map (fun (nd : Rctree.node) -> nd.cap) tree.Rctree.nodes in
  List.iter
    (fun (i, c) ->
      if i < 0 || i >= n then invalid_arg "Rc_sim.simulate: load node out of range";
      caps.(i) <- caps.(i) +. c)
    load_caps;
  caps.(0) <- caps.(0) +. driver.Arc.cap_intrinsic;
  (* Conductance Laplacian of the tree. *)
  let gmat = Linalg.make n n in
  Array.iteri
    (fun i (nd : Rctree.node) ->
      if i > 0 then begin
        let g = 1.0 /. nd.res in
        let p = nd.parent in
        gmat.(i).(i) <- gmat.(i).(i) +. g;
        gmat.(p).(p) <- gmat.(p).(p) +. g;
        gmat.(i).(p) <- gmat.(i).(p) -. g;
        gmat.(p).(i) <- gmat.(p).(i) -. g
      end)
    tree.Rctree.nodes;
  (* Time scale: driver charging everything plus the worst Elmore. *)
  let i_half =
    Arc.current tech driver
      ~vin:(match driver.Arc.pull with Arc.Pull_up -> 0.0 | Arc.Pull_down -> vdd)
      ~vout:(vdd /. 2.0)
  in
  let total_cap = Array.fold_left ( +. ) 0.0 caps in
  let elmore = Nsigma_rcnet.Elmore.delays tree in
  let worst_elmore = Array.fold_left Float.max 0.0 elmore in
  let horizon =
    (3.0 *. total_cap *. vdd /. Float.max i_half 1e-12)
    +. (8.0 *. worst_elmore) +. input_slew
  in
  let dt = horizon /. float_of_int steps in
  (* Backward-Euler system matrix, factored once. *)
  let a = Array.mapi (fun i row ->
      Array.mapi (fun j g -> g +. if i = j then caps.(i) /. dt else 0.0) row)
      gmat
  in
  let lu = Linalg.lu_factor a in
  let rising = driver.Arc.pull = Arc.Pull_up in
  let vin t =
    let frac = Float.max 0.0 (Float.min 1.0 (t /. input_slew)) in
    if rising then vdd *. (1.0 -. frac) else vdd *. frac
  in
  (* The driver moves the root away from its start rail; we integrate the
     travelled voltage u_i so rising/falling share one code path. *)
  let u = Array.make n 0.0 in
  let vout_of_u x = if rising then x else vdd -. x in
  let crossings = Array.make n nan in
  let cross20 = Array.make n nan in
  let cross80 = Array.make n nan in
  let lvl = vdd /. 2.0 in
  let lvl20 = 0.2 *. vdd and lvl80 = 0.8 *. vdd in
  let rhs = Array.make n 0.0 in
  let t = ref 0.0 in
  let max_steps = steps * 40 in
  let remaining () =
    Float.is_nan crossings.(0)
    || Array.exists
         (fun tap -> Float.is_nan crossings.(tap) || Float.is_nan cross80.(tap))
         tree.Rctree.taps
  in
  let step_count = ref 0 in
  while remaining () && !step_count < max_steps do
    incr step_count;
    let i_drv =
      Arc.current tech driver ~vin:(vin !t) ~vout:(vout_of_u u.(0))
    in
    for i = 0 to n - 1 do
      rhs.(i) <- (caps.(i) /. dt *. u.(i)) +. (if i = 0 then i_drv else 0.0)
    done;
    let u1 = Linalg.lu_solve lu rhs in
    let t1 = !t +. dt in
    for i = 0 to n - 1 do
      u1.(i) <- Float.min vdd u1.(i);
      let record store level =
        if Float.is_nan store.(i) && u.(i) < level && u1.(i) >= level then
          store.(i) <-
            (if u1.(i) = u.(i) then t1
             else !t +. ((level -. u.(i)) /. (u1.(i) -. u.(i)) *. dt))
      in
      record cross20 lvl20;
      record crossings lvl;
      record cross80 lvl80;
      u.(i) <- u1.(i)
    done;
    t := t1
  done;
  if remaining () then
    failwith "Rc_sim.simulate: a monitored node never crossed 50%";
  let root_crossing = crossings.(0) in
  let tap_delays =
    Array.map (fun tap -> (tap, crossings.(tap) -. root_crossing)) tree.Rctree.taps
  in
  let tap_slews =
    Array.map
      (fun tap -> (tap, (cross80.(tap) -. cross20.(tap)) /. 0.6))
      tree.Rctree.taps
  in
  { root_crossing; driver_delay = root_crossing -. (input_slew /. 2.0); tap_delays; tap_slews }

let wire_delay ?steps tech ~driver ~tree ~load_caps ~input_slew =
  let r = simulate ?steps tech ~driver ~tree ~load_caps ~input_slew in
  if Array.length r.tap_delays = 0 then
    invalid_arg "Rc_sim.wire_delay: net has no tap";
  snd r.tap_delays.(0)
