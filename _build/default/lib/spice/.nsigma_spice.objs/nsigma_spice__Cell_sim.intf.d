lib/spice/cell_sim.mli: Arc Nsigma_process
