lib/spice/rc_sim.mli: Arc Nsigma_process Nsigma_rcnet
