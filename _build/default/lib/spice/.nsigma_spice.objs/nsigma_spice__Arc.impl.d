lib/spice/arc.ml: Array Device Float Nsigma_process
