lib/spice/rc_sim.ml: Arc Array Float List Nsigma_process Nsigma_rcnet Nsigma_stats
