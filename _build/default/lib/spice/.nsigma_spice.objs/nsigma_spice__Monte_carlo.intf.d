lib/spice/monte_carlo.mli: Nsigma_process Nsigma_stats
