lib/spice/arc.mli: Device Nsigma_process
