lib/spice/device.mli: Nsigma_process
