lib/spice/monte_carlo.ml: Array Float List Nsigma_process Nsigma_stats
