lib/spice/cell_sim.ml: Arc Float Nsigma_process
