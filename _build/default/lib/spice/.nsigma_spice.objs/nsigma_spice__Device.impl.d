lib/spice/device.ml: Float Nsigma_process Nsigma_stats
