(** Transient simulation of one cell switching arc.

    The output node (intrinsic + load capacitance) is integrated through
    the arc's nonlinear current with classical RK4 under a linear input
    ramp.  Delay is measured 50%-input to 50%-output; output slew is the
    20%–80% crossing interval rescaled to a full-swing equivalent ramp,
    which is also the input-slew convention ([input_slew] is the 0–100%
    ramp time).

    This engine is the library's "SPICE": the Monte-Carlo golden
    reference that every model is judged against. *)

type result = {
  delay : float;  (** 50%-to-50% propagation delay (s) *)
  output_slew : float;  (** full-swing-equivalent output ramp time (s) *)
}

val simulate :
  ?steps_per_phase:int ->
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  result
(** Simulate the arc into [load_cap] (F) with the given input ramp.
    [steps_per_phase] (default 16) controls integration resolution (the
    delay is converged to <0.01% at 15 already); the
    step size adapts to min(input ramp, output time-constant).
    @raise Invalid_argument for non-positive slew or negative load.
    @raise Failure if the output never crosses 50% within the step budget
    (a sign of a pathological variation sample; callers treat it as a
    timing failure). *)

val nominal_delay :
  Nsigma_process.Technology.t ->
  Arc.t ->
  input_slew:float ->
  load_cap:float ->
  float
(** Convenience projection of {!simulate}. *)
