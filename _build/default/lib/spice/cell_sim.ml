module Technology = Nsigma_process.Technology

type result = { delay : float; output_slew : float }

(* Linear-interpolated time at which a sampled trajectory crosses
   [level]; [t0, v0] is the previous sample, [t1, v1] the current one. *)
let crossing ~t0 ~v0 ~t1 ~v1 level =
  if v1 = v0 then t1 else t0 +. ((level -. v0) /. (v1 -. v0) *. (t1 -. t0))

let simulate ?(steps_per_phase = 16) tech arc ~input_slew ~load_cap =
  if input_slew <= 0.0 then invalid_arg "Cell_sim.simulate: slew must be positive";
  if load_cap < 0.0 then invalid_arg "Cell_sim.simulate: negative load";
  let vdd = tech.Technology.vdd_nominal in
  let cap = load_cap +. arc.Arc.cap_intrinsic in
  let falling = arc.Arc.pull = Arc.Pull_down in
  (* Input ramp: rising for a falling output and vice versa. *)
  let vin t =
    let frac = Float.max 0.0 (Float.min 1.0 (t /. input_slew)) in
    if falling then vdd *. frac else vdd *. (1.0 -. frac)
  in
  (* Output moves away from its rail; track it as "distance travelled"
     u ∈ [0, vdd]: vout = vdd − u when falling, u when rising. *)
  let vout u = if falling then vdd -. u else u in
  let dudt t u =
    Arc.current tech arc ~vin:(vin t) ~vout:(vout u) /. cap
  in
  (* Step size: resolve both the input ramp and the output transition.
     The output time scale is estimated from the fully-on current at
     half swing. *)
  let i_half =
    Arc.current tech arc
      ~vin:(if falling then vdd else 0.0)
      ~vout:(vout (vdd /. 2.0))
  in
  let t_out = cap *. vdd /. Float.max i_half 1e-12 in
  let dt =
    Float.min (input_slew /. float_of_int steps_per_phase)
      (t_out /. float_of_int steps_per_phase)
  in
  let max_steps = 400 * steps_per_phase in
  let t50_in = input_slew /. 2.0 in
  let lvl20 = 0.2 *. vdd and lvl50 = 0.5 *. vdd and lvl80 = 0.8 *. vdd in
  let t20 = ref nan and t50 = ref nan and t80 = ref nan in
  let t = ref 0.0 and u = ref 0.0 in
  let steps = ref 0 in
  while Float.is_nan !t20 && !steps < max_steps do
    incr steps;
    let t0 = !t and u0 = !u in
    (* RK4 step. *)
    let k1 = dudt t0 u0 in
    let k2 = dudt (t0 +. (dt /. 2.0)) (u0 +. (dt /. 2.0 *. k1)) in
    let k3 = dudt (t0 +. (dt /. 2.0)) (u0 +. (dt /. 2.0 *. k2)) in
    let k4 = dudt (t0 +. dt) (u0 +. (dt *. k3)) in
    let u1 = Float.min vdd (u0 +. (dt /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4))) in
    let t1 = t0 +. dt in
    let record cell level =
      if Float.is_nan !cell && u0 < level && u1 >= level then
        cell := crossing ~t0 ~v0:u0 ~t1 ~v1:u1 level
    in
    (* u counts distance from the starting rail, so 20% travelled is the
       80% voltage point on a falling edge; record in travel terms. *)
    record t80 lvl20;
    record t50 lvl50;
    record t20 lvl80;
    t := t1;
    u := u1
  done;
  if Float.is_nan !t50 || Float.is_nan !t20 || Float.is_nan !t80 then
    failwith "Cell_sim.simulate: output did not complete its transition";
  { delay = !t50 -. t50_in; output_slew = (!t20 -. !t80) /. 0.6 }

let nominal_delay tech arc ~input_slew ~load_cap =
  (simulate tech arc ~input_slew ~load_cap).delay
