module Variation = Nsigma_process.Variation
module Moments = Nsigma_stats.Moments

let samples tech g ~n f =
  Array.init n (fun _ -> f (Variation.draw tech g))

let delays tech g ~n f =
  let out = ref [] in
  let kept = ref 0 in
  for _ = 1 to n do
    let sample = Variation.draw tech g in
    match f sample with
    | d ->
      out := d :: !out;
      incr kept
    | exception Failure _ -> ()
  done;
  let arr = Array.make !kept 0.0 in
  List.iteri (fun i d -> arr.(!kept - 1 - i) <- d) !out;
  arr

let study tech g ~n f =
  let arr = delays tech g ~n f in
  Array.sort Float.compare arr;
  (Moments.summary_of_array arr, arr)
