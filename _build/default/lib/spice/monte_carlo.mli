(** Monte-Carlo harness over process variation.

    Mirrors the paper's methodology: N independent global+local samples,
    a user-supplied measurement per sample, and moment/quantile reduction
    of the resulting delay population. *)

val samples :
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> 'a) ->
  'a array
(** Draw [n] variation samples and measure each. *)

val delays :
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  float array
(** {!samples} specialised to scalar measurements, skipping samples whose
    simulation fails to converge (reported failures are < 0.1% in
    practice and correspond to non-functional variation corners). *)

val study :
  Nsigma_process.Technology.t ->
  Nsigma_stats.Rng.t ->
  n:int ->
  (Nsigma_process.Variation.t -> float) ->
  Nsigma_stats.Moments.summary * float array
(** Moments plus the sorted sample array (ready for quantile lookup). *)
