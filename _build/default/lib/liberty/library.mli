(** A characterised cell library: tables for every (cell, edge) pair,
    plus text serialisation so expensive characterisation runs can be
    cached on disk (the moral equivalent of a .lib/LVF file). *)

type t

val create : Nsigma_process.Technology.t -> t
(** An empty library bound to a technology/corner. *)

val tech : t -> Nsigma_process.Technology.t

val add : t -> Characterize.table -> unit

val find : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table
(** @raise Not_found if the pair was never characterised. *)

val find_opt : t -> Cell.t -> edge:[ `Rise | `Fall ] -> Characterize.table option

val cells : t -> (Cell.t * [ `Rise | `Fall ]) list
(** All characterised pairs, in insertion order. *)

val characterize_all :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Build a library by characterising every cell (both edges by
    default). *)

val save : t -> string -> unit
(** Write the library to a text file. *)

val load : Nsigma_process.Technology.t -> string -> t
(** Read a library back.  The stored VDD must match the technology's
    (within 1 mV) — characterisation data is corner-specific.
    @raise Failure on parse errors or corner mismatch. *)

val load_or_characterize :
  ?n_mc:int ->
  ?seed:int ->
  ?slews:float array ->
  ?loads:float array ->
  ?edges:[ `Rise | `Fall ] list ->
  path:string ->
  Nsigma_process.Technology.t ->
  Cell.t list ->
  t
(** Cache wrapper: load [path] if it exists and covers the requested
    cells; otherwise characterise and save. *)
