lib/liberty/library.mli: Cell Characterize Nsigma_process
