lib/liberty/library.ml: Array Cell Characterize Float Fun Hashtbl List Nsigma_process Nsigma_stats Option Printf String Sys
