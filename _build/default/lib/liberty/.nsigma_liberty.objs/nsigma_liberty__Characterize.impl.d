lib/liberty/characterize.ml: Array Cell Float Fun List Nsigma_process Nsigma_spice Nsigma_stats Printf
