lib/liberty/cell.mli: Format Nsigma_process Nsigma_spice
