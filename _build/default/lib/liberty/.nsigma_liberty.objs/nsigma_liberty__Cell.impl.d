lib/liberty/cell.ml: Array Float Format Nsigma_process Nsigma_spice Printf String
