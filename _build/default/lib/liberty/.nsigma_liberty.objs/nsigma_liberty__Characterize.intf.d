lib/liberty/characterize.mli: Cell Nsigma_process Nsigma_stats
