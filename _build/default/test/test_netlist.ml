(* Tests for netlist IR, generators (functional correctness of the
   arithmetic circuits), benchmark registry and Verilog round-trip. *)

module N = Nsigma_netlist.Netlist
module B = Nsigma_netlist.Builder
module G = Nsigma_netlist.Generators
module Bm = Nsigma_netlist.Benchmarks
module V = Nsigma_netlist.Verilog_lite
module Cell = Nsigma_liberty.Cell

let to_bits v width = Array.init width (fun i -> (v lsr i) land 1 = 1)

let of_bits a =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) a;
  !v

(* ---------- Builder / IR ---------- *)

let tiny_netlist () =
  let b = B.create ~name:"tiny" in
  let a = B.input b "a" and c = B.input b "c" in
  let n1 = B.nand2 b a c in
  let n2 = B.inv b n1 in
  B.output b n2;
  B.finish b

let test_builder_basic () =
  let nl = tiny_netlist () in
  Alcotest.(check int) "two gates" 2 (N.n_cells nl);
  Alcotest.(check int) "four nets" 4 nl.N.n_nets;
  let out = N.eval nl [| true; true |] in
  Alcotest.(check bool) "AND via NAND+INV" true out.(0)

let test_validate_catches_double_driver () =
  let nl = tiny_netlist () in
  let bad =
    {
      nl with
      N.gates =
        Array.append nl.N.gates
          [|
            {
              N.g_name = "dup";
              cell = Cell.make Cell.Inv ~strength:1;
              inputs = [| 0 |];
              output = nl.N.gates.(0).N.output;
            };
          |];
    }
  in
  Alcotest.(check bool) "double driver rejected" true
    (try
       N.validate bad;
       false
     with Invalid_argument _ -> true)

let test_topo_order_valid () =
  let nl = (Bm.find "c432").Bm.generate () in
  let order = N.topo_order nl in
  let drivers = N.driver_of nl in
  let position = Array.make (N.n_cells nl) 0 in
  Array.iteri (fun pos gi -> position.(gi) <- pos) order;
  Array.iteri
    (fun gi g ->
      Array.iter
        (fun net ->
          let d = drivers.(net) in
          if d >= 0 && position.(d) >= position.(gi) then
            Alcotest.fail "driver must precede sink")
        g.N.inputs)
    nl.N.gates

let test_logic_depth_spine () =
  let nl = G.random_logic ~name:"d" ~n_inputs:4 ~n_gates:40 ~depth:10 ~seed:1 in
  Alcotest.(check int) "spine guarantees depth" 10 (N.logic_depth nl)

(* ---------- Arithmetic generators ---------- *)

let test_ripple_adder_exhaustive_small () =
  let nl = G.ripple_adder ~bits:4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let out =
          N.eval nl (Array.concat [ to_bits a 4; to_bits b 4; [| cin = 1 |] ])
        in
        Alcotest.(check int)
          (Printf.sprintf "%d+%d+%d" a b cin)
          (a + b + cin) (of_bits out)
      done
    done
  done

let test_kogge_stone_matches_ripple () =
  let ks = G.kogge_stone_adder ~bits:8 in
  let cases = [ (0, 0); (255, 255); (173, 99); (128, 128); (1, 254); (85, 170) ] in
  List.iter
    (fun (a, b) ->
      let out = N.eval ks (Array.append (to_bits a 8) (to_bits b 8)) in
      Alcotest.(check int) (Printf.sprintf "ks %d+%d" a b) (a + b) (of_bits out))
    cases

let test_subtractor () =
  let nl = G.subtractor ~bits:8 in
  List.iter
    (fun (a, b) ->
      let out = N.eval nl (Array.append (to_bits a 8) (to_bits b 8)) in
      let diff = of_bits (Array.sub out 0 8) in
      let no_borrow = out.(8) in
      Alcotest.(check int) (Printf.sprintf "%d-%d" a b) ((a - b) land 255) diff;
      Alcotest.(check bool) "borrow flag" (a >= b) no_borrow)
    [ (200, 57); (57, 200); (0, 0); (255, 1); (100, 100) ]

let test_multiplier () =
  let nl = G.array_multiplier ~bits:5 in
  List.iter
    (fun (a, b) ->
      let out = N.eval nl (Array.append (to_bits a 5) (to_bits b 5)) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (of_bits out))
    [ (0, 0); (31, 31); (17, 23); (1, 30); (16, 16); (21, 13) ]

let test_divider () =
  let nl = G.array_divider ~dividend_bits:8 ~divisor_bits:4 in
  List.iter
    (fun (a, b) ->
      let out = N.eval nl (Array.append (to_bits a 8) (to_bits b 4)) in
      let q = of_bits (Array.sub out 0 8) and r = of_bits (Array.sub out 8 4) in
      Alcotest.(check int) (Printf.sprintf "%d/%d q" a b) (a / b) q;
      Alcotest.(check int) (Printf.sprintf "%d/%d r" a b) (a mod b) r)
    [ (157, 11); (255, 15); (8, 9); (100, 1); (0, 3); (144, 12) ]

let ks16 = lazy (G.kogge_stone_adder ~bits:16)
let mul8 = lazy (G.array_multiplier ~bits:8)
let div12 = lazy (G.array_divider ~dividend_bits:12 ~divisor_bits:6)

let prop_adder_random =
  QCheck.Test.make ~count:60 ~name:"kogge-stone adds correctly"
    QCheck.(pair (int_bound 65535) (int_bound 65535))
    (fun (a, b) ->
      let nl = Lazy.force ks16 in
      let out = N.eval nl (Array.append (to_bits a 16) (to_bits b 16)) in
      of_bits out = a + b)

let prop_mul_random =
  QCheck.Test.make ~count:40 ~name:"array multiplier multiplies"
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let nl = Lazy.force mul8 in
      let out = N.eval nl (Array.append (to_bits a 8) (to_bits b 8)) in
      of_bits out = a * b)

let prop_div_random =
  QCheck.Test.make ~count:40 ~name:"array divider divides"
    QCheck.(pair (int_bound 4095) (int_range 1 63))
    (fun (a, b) ->
      let nl = Lazy.force div12 in
      let out = N.eval nl (Array.append (to_bits a 12) (to_bits b 6)) in
      let q = of_bits (Array.sub out 0 12) and r = of_bits (Array.sub out 12 6) in
      q = a / b && r = a mod b)

(* ---------- Sizing / benchmarks ---------- *)

let test_size_for_fanout () =
  let b = B.create ~name:"fo" in
  let a = B.input b "a" in
  let hub = B.inv b a in
  (* 6 sinks on the hub net -> driver should get strength 8. *)
  for _ = 1 to 6 do
    B.output b (B.inv b hub)
  done;
  let nl = G.size_for_fanout (B.finish b) in
  let hub_gate = nl.N.gates.(0) in
  Alcotest.(check int) "hub upsized" 8 hub_gate.N.cell.Cell.strength

let test_benchmarks_generate_and_match_scale () =
  List.iter
    (fun (bm : Bm.t) ->
      let nl = bm.Bm.generate () in
      N.validate nl;
      let cells = N.n_cells nl in
      let target = bm.Bm.paper.Bm.p_cells in
      if
        (* ISCAS85 random entries match exactly; arithmetic units within 35%. *)
        cells < target * 65 / 100
        || cells > target * 135 / 100
      then
        Alcotest.failf "%s: %d cells vs paper %d" bm.Bm.name cells target)
    (Bm.iscas85 @ [ List.nth Bm.pulpino 0; List.nth Bm.pulpino 1 ])

let test_benchmark_find () =
  Alcotest.(check string) "find c432" "c432" (Bm.find "C432").Bm.name;
  Alcotest.(check bool) "find missing raises" true
    (try
       ignore (Bm.find "c9999");
       false
     with Not_found -> true)

let test_benchmark_determinism () =
  let a = (Bm.find "c432").Bm.generate () in
  let b = (Bm.find "c432").Bm.generate () in
  Alcotest.(check int) "same size" (N.n_cells a) (N.n_cells b);
  let ins = Array.make (Array.length a.N.primary_inputs) true in
  Alcotest.(check bool) "same function" true (N.eval a ins = N.eval b ins)

(* ---------- Verilog ---------- *)

let test_verilog_roundtrip () =
  let nl = (Bm.find "c1355").Bm.generate () in
  let nl2 = V.of_string (V.to_string nl) in
  Alcotest.(check int) "gates preserved" (N.n_cells nl) (N.n_cells nl2);
  Alcotest.(check int) "nets preserved" nl.N.n_nets nl2.N.n_nets;
  let ins = Array.make (Array.length nl.N.primary_inputs) false in
  Alcotest.(check bool) "function preserved (all-0)" true (N.eval nl ins = N.eval nl2 ins);
  let ins1 = Array.make (Array.length nl.N.primary_inputs) true in
  Alcotest.(check bool) "function preserved (all-1)" true
    (N.eval nl ins1 = N.eval nl2 ins1)

let test_verilog_rejects_bad_pins () =
  let text = "module m (a, y);\n input a;\n output y;\n INVX1 g0 (y, a, a);\nendmodule\n" in
  Alcotest.(check bool) "pin count" true
    (try
       ignore (V.of_string text);
       false
     with Failure _ -> true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "nsigma_netlist"
    [
      ( "ir",
        [
          Alcotest.test_case "builder" `Quick test_builder_basic;
          Alcotest.test_case "double driver" `Quick test_validate_catches_double_driver;
          Alcotest.test_case "topo order" `Quick test_topo_order_valid;
          Alcotest.test_case "logic depth" `Quick test_logic_depth_spine;
        ] );
      ( "arithmetic",
        [
          Alcotest.test_case "ripple exhaustive" `Quick test_ripple_adder_exhaustive_small;
          Alcotest.test_case "kogge-stone" `Quick test_kogge_stone_matches_ripple;
          Alcotest.test_case "subtractor" `Quick test_subtractor;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "divider" `Quick test_divider;
          qt prop_adder_random;
          qt prop_mul_random;
          qt prop_div_random;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "fanout sizing" `Quick test_size_for_fanout;
          Alcotest.test_case "scale match" `Slow test_benchmarks_generate_and_match_scale;
          Alcotest.test_case "find" `Quick test_benchmark_find;
          Alcotest.test_case "deterministic" `Quick test_benchmark_determinism;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "bad pins" `Quick test_verilog_rejects_bad_pins;
        ] );
    ]
