(* Tests for the N-sigma core: Table-I regression behaviour, moment
   calibration, wire model identities, model persistence. *)

module T = Nsigma_process.Technology
module Moments = Nsigma_stats.Moments
module Rng = Nsigma_stats.Rng
module Quantile = Nsigma_stats.Quantile
module D = Nsigma_stats.Distribution
module Cell = Nsigma_liberty.Cell
module Ch = Nsigma_liberty.Characterize
module Library = Nsigma_liberty.Library
module Cm = Nsigma.Cell_model
module Calibration = Nsigma.Calibration
module Wm = Nsigma.Wire_model
module Model = Nsigma.Model
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6

(* ---------- Cell_model ---------- *)

let test_terms_match_table1 () =
  Alcotest.(check int) "±3σ has 2 terms" 2 (List.length (Cm.terms_for_level 3));
  Alcotest.(check int) "±2σ has 3 terms" 3 (List.length (Cm.terms_for_level (-2)));
  Alcotest.(check int) "0σ has 2 terms" 2 (List.length (Cm.terms_for_level 0));
  Alcotest.(check bool) "±3σ uses σκ not σγ" true
    (List.mem Cm.Sigma_kappa (Cm.terms_for_level 3)
    && not (List.mem Cm.Sigma_gamma (Cm.terms_for_level 3)));
  Alcotest.(check bool) "±1σ uses σγ not σκ" true
    (List.mem Cm.Sigma_gamma (Cm.terms_for_level 1)
    && not (List.mem Cm.Sigma_kappa (Cm.terms_for_level 1)))

let test_gaussian_data_zero_coeffs () =
  (* Training on exactly-Gaussian quantiles must give ~zero corrections
     and predictions equal to μ + nσ. *)
  let g = Rng.create ~seed:101 in
  let observations =
    List.init 60 (fun _ ->
        let mu = 20e-12 +. Rng.float g 80e-12 in
        let sigma = 2e-12 +. Rng.float g 6e-12 in
        let m = { Moments.n = 1000; mean = mu; std = sigma; skewness = 0.0; kurtosis = 3.0 } in
        let quantiles =
          Array.of_list
            (List.map (fun n -> mu +. (float_of_int n *. sigma)) Quantile.sigma_levels)
        in
        { Cm.moments = m; quantiles })
  in
  let model = Cm.fit observations in
  let probe = { Moments.n = 1000; mean = 50e-12; std = 5e-12; skewness = 0.0; kurtosis = 3.0 } in
  List.iter
    (fun n ->
      check_close ~eps:1e-6 "gaussian prediction = μ+nσ"
        (50e-12 +. (float_of_int n *. 5e-12))
        (Cm.predict model probe ~sigma:n))
    Quantile.sigma_levels

let test_lognormal_family_fit () =
  (* Train on lognormal quantiles (the near-threshold shape); the model
     must beat the Gaussian baseline at +3σ on held-out members. *)
  let make_obs sigma_log =
    let d = { D.Lognormal.mu = log 40e-12; sigma = sigma_log } in
    let g = Rng.create ~seed:(int_of_float (sigma_log *. 1000.)) in
    let xs = Array.init 8000 (fun _ -> D.Lognormal.sample d g) in
    Array.sort Float.compare xs;
    let m = Moments.summary_of_array xs in
    let quantiles =
      Array.of_list
        (List.map
           (fun n ->
             Nsigma_stats.Quantile.of_sorted xs
               (Quantile.probability_of_sigma (float_of_int n)))
           Quantile.sigma_levels)
    in
    ({ Cm.moments = m; quantiles }, m, quantiles)
  in
  let train =
    List.map (fun s -> let o, _, _ = make_obs s in o) [ 0.1; 0.15; 0.2; 0.3; 0.35; 0.4 ]
  in
  let model = Cm.fit train in
  let _, m_test, q_test = make_obs 0.25 in
  let idx_p3 = 6 in
  let pred = Cm.predict model m_test ~sigma:3 in
  let gauss = Cm.gaussian_baseline m_test ~sigma:3 in
  let err x = Float.abs (x -. q_test.(idx_p3)) /. q_test.(idx_p3) in
  Alcotest.(check bool) "beats gaussian at +3σ" true (err pred < err gauss);
  Alcotest.(check bool) "+3σ error under 5%" true (err pred < 0.05)

let test_fit_requires_data () =
  Alcotest.check_raises "empty training set"
    (Invalid_argument "Cell_model.fit: empty training set") (fun () ->
      ignore (Cm.fit []))

let test_predict_rejects_bad_sigma () =
  let m = { Moments.n = 1; mean = 1.0; std = 0.1; skewness = 0.0; kurtosis = 3.0 } in
  let model =
    Cm.fit [ { Cm.moments = m; quantiles = [| 0.7; 0.8; 0.9; 1.0; 1.1; 1.2; 1.3 |] } ]
  in
  Alcotest.(check bool) "sigma out of range" true
    (try
       ignore (Cm.predict model m ~sigma:4);
       false
     with Invalid_argument _ -> true)

(* ---------- Calibration ---------- *)

let small_table =
  lazy
    (Ch.characterize ~n_mc:400
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~loads:[| 0.1e-15; 0.4e-15; 1e-15; 3e-15 |]
       tech
       (Cell.make Cell.Inv ~strength:1)
       ~edge:`Fall)

let test_calibration_at_reference () =
  let calib = Calibration.fit (Lazy.force small_table) in
  let ref_m = Calibration.reference_moments calib in
  let m =
    Calibration.moments_at calib ~slew:Calibration.reference_slew
      ~load:Calibration.reference_load
  in
  (* Grid interpolation at the reference grid point is exact. *)
  check_close ~eps:1e-9 "μ at reference" ref_m.Moments.mean m.Moments.mean;
  check_close ~eps:1e-9 "σ at reference" ref_m.Moments.std m.Moments.std

let test_calibration_tracks_conditions () =
  let calib = Calibration.fit (Lazy.force small_table) in
  let m_small = Calibration.moments_at calib ~slew:10e-12 ~load:0.2e-15 in
  let m_big = Calibration.moments_at calib ~slew:200e-12 ~load:2.5e-15 in
  Alcotest.(check bool) "μ grows with condition" true
    (m_big.Moments.mean > m_small.Moments.mean);
  Alcotest.(check bool) "σ grows with condition" true
    (m_big.Moments.std > m_small.Moments.std)

let test_calibration_physical_clamps () =
  let calib = Calibration.fit (Lazy.force small_table) in
  (* Far outside the grid: still physical. *)
  let m = Calibration.moments_at calib ~slew:5e-9 ~load:1e-12 in
  Alcotest.(check bool) "σ positive" true (m.Moments.std > 0.0);
  Alcotest.(check bool) "κ >= 1" true (m.Moments.kurtosis >= 1.0)

let test_calibration_surface_mode () =
  let calib = Calibration.fit (Lazy.force small_table) in
  let m_grid = Calibration.moments_at calib ~slew:80e-12 ~load:1.5e-15 in
  let m_surf = Calibration.moments_at_surface calib ~slew:80e-12 ~load:1.5e-15 in
  (* The two evaluations should agree within ~15% on the mean. *)
  Alcotest.(check bool) "surface close to grid" true
    (Float.abs (m_surf.Moments.mean -. m_grid.Moments.mean)
    < 0.15 *. m_grid.Moments.mean)

let test_calibration_serialisation () =
  let calib = Calibration.fit (Lazy.force small_table) in
  let calib2 = Calibration.of_lines (Calibration.to_lines calib) in
  let m1 = Calibration.moments_at calib ~slew:77e-12 ~load:0.9e-15 in
  let m2 = Calibration.moments_at calib2 ~slew:77e-12 ~load:0.9e-15 in
  check_close ~eps:1e-6 "roundtrip μ" m1.Moments.mean m2.Moments.mean;
  check_close ~eps:1e-6 "roundtrip γ" m1.Moments.skewness m2.Moments.skewness;
  let s1 = Calibration.moments_at_surface calib ~slew:77e-12 ~load:0.9e-15 in
  let s2 = Calibration.moments_at_surface calib2 ~slew:77e-12 ~load:0.9e-15 in
  check_close ~eps:1e-6 "roundtrip surface μ" s1.Moments.mean s2.Moments.mean

(* ---------- Wire_model ---------- *)

let test_theoretical_x () =
  check_close "INVX4 is the reference" 1.0
    (Wm.theoretical_x (Cell.make Cell.Inv ~strength:4));
  check_close "INVX1 = 2" 2.0 (Wm.theoretical_x (Cell.make Cell.Inv ~strength:1));
  check_close "NAND2X2 = 1" 1.0 (Wm.theoretical_x (Cell.make Cell.Nand2 ~strength:2))

let synthetic_wire_model () =
  {
    Wm.ratio_fo4 = 0.2;
    x_table = [ ("INVX1", 2.0); ("INVX4", 1.0); ("NAND2X1", 1.5) ];
    scale_fi = 1.0;
    scale_fo = 1.0;
  }

let test_variability_eq7 () =
  let wm = synthetic_wire_model () in
  let inv1 = Cell.make Cell.Inv ~strength:1 in
  let inv4 = Cell.make Cell.Inv ~strength:4 in
  (* X_w = X_FI·(X_FI·r4) + X_FO·(X_FO·r4) = (X_FI² + X_FO²)·r4. *)
  check_close ~eps:1e-12 "eq 7" (((2.0 *. 2.0) +. (1.0 *. 1.0)) *. 0.2)
    (Wm.variability wm ~driver:inv1 ~load:(Some inv4));
  check_close ~eps:1e-12 "no load term" (2.0 *. 2.0 *. 0.2)
    (Wm.variability wm ~driver:inv1 ~load:None)

let test_quantile_eq9 () =
  let wm = synthetic_wire_model () in
  let inv4 = Cell.make Cell.Inv ~strength:4 in
  let xw = Wm.variability wm ~driver:inv4 ~load:None in
  let elmore = 10e-12 in
  check_close ~eps:1e-12 "eq 9 at +3σ" ((1.0 +. (3.0 *. xw)) *. elmore)
    (Wm.quantile wm ~elmore ~driver:inv4 ~load:None ~sigma:3);
  check_close ~eps:1e-12 "eq 9 symmetric" ((1.0 -. (3.0 *. xw)) *. elmore)
    (Wm.quantile wm ~elmore ~driver:inv4 ~load:None ~sigma:(-3))

let test_stronger_driver_less_variability () =
  let wm = synthetic_wire_model () in
  let x1 = Wm.variability wm ~driver:(Cell.make Cell.Inv ~strength:1) ~load:None in
  let x4 = Wm.variability wm ~driver:(Cell.make Cell.Inv ~strength:4) ~load:None in
  Alcotest.(check bool) "x4 driver calmer than x1" true (x4 < x1)

let test_fit_scales_recovers () =
  let wm = synthetic_wire_model () in
  let inv1 = Cell.make Cell.Inv ~strength:1 in
  let inv4 = Cell.make Cell.Inv ~strength:4 in
  let nand = Cell.make Cell.Nand2 ~strength:1 in
  (* Generate observations from a known (a,b) = (0.6, 0.3). *)
  let truth = { wm with Wm.scale_fi = 0.6; scale_fo = 0.3 } in
  let configs =
    [ (inv1, Some inv4); (inv4, Some inv1); (nand, Some inv4); (inv4, Some nand);
      (inv1, Some nand); (nand, Some inv1) ]
  in
  let obs =
    List.map
      (fun (d, l) ->
        { Wm.driver = d; load = l;
          measured_variability = Wm.variability truth ~driver:d ~load:l })
      configs
  in
  let fitted = Wm.fit_scales wm obs in
  check_close ~eps:1e-8 "scale_fi recovered" 0.6 fitted.Wm.scale_fi;
  check_close ~eps:1e-8 "scale_fo recovered" 0.3 fitted.Wm.scale_fo

let test_wire_model_serialisation () =
  let wm = synthetic_wire_model () in
  let wm2 = Wm.of_lines (Wm.to_lines wm) in
  check_close "ratio" wm.Wm.ratio_fo4 wm2.Wm.ratio_fo4;
  Alcotest.(check int) "x table size" (List.length wm.Wm.x_table)
    (List.length wm2.Wm.x_table)

(* ---------- Model (end to end, small library) ---------- *)

let small_library =
  lazy
    (let cells =
       [ Cell.make Cell.Inv ~strength:1; Cell.make Cell.Inv ~strength:4;
         Cell.make Cell.Nand2 ~strength:1 ]
     in
     Library.load_or_characterize ~n_mc:300
       ~slews:[| 10e-12; 100e-12; 300e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_core.lvf")
       tech cells)

let test_model_build_and_quantiles_ordered () =
  let model = Model.build (Lazy.force small_library) in
  let cell = Cell.make Cell.Nand2 ~strength:1 in
  let q n =
    Model.cell_quantile model cell ~edge:`Fall ~input_slew:50e-12 ~load_cap:1e-15
      ~sigma:n
  in
  Alcotest.(check bool) "quantiles ascend" true
    (q (-3) < q (-1) && q (-1) < q 0 && q 0 < q 1 && q 1 < q 3);
  Alcotest.(check bool) "right tail longer than left (skewed)" true
    (q 3 -. q 0 > q 0 -. q (-3))

let test_model_wire_quantile () =
  let model = Model.build (Lazy.force small_library) in
  let tree = Rctree.ladder ~segments:4 ~res_per_seg:200.0 ~cap_per_seg:1e-15 in
  let driver = Cell.make Cell.Inv ~strength:1 in
  let elmore = Elmore.delay_at tree 4 in
  let q0 = Model.wire_quantile model ~tree ~tap:4 ~driver ~load:None ~sigma:0 in
  check_close ~eps:1e-12 "0σ wire = Elmore" elmore q0;
  let q3 = Model.wire_quantile model ~tree ~tap:4 ~driver ~load:None ~sigma:3 in
  Alcotest.(check bool) "+3σ above Elmore" true (q3 > elmore)

let test_model_save_load () =
  let model = Model.build (Lazy.force small_library) in
  let path = Filename.temp_file "nsigma_model" ".coeffs" in
  Model.save model path;
  let model2 = Model.load (Lazy.force small_library) path in
  Sys.remove path;
  let cell = Cell.make Cell.Inv ~strength:1 in
  List.iter
    (fun n ->
      check_close ~eps:1e-6 "persisted quantiles agree"
        (Model.cell_quantile model cell ~edge:`Fall ~input_slew:60e-12
           ~load_cap:0.8e-15 ~sigma:n)
        (Model.cell_quantile model2 cell ~edge:`Fall ~input_slew:60e-12
           ~load_cap:0.8e-15 ~sigma:n))
    [ -3; 0; 3 ];
  check_close ~eps:1e-9 "wire scales persisted" model.Model.wire.Wm.scale_fi
    model2.Model.wire.Wm.scale_fi

let test_model_missing_cell_raises () =
  let model = Model.build (Lazy.force small_library) in
  Alcotest.(check bool) "uncharacterised cell" true
    (try
       ignore
         (Model.cell_quantile model (Cell.make Cell.Xor2 ~strength:8) ~edge:`Fall
            ~input_slew:10e-12 ~load_cap:1e-15 ~sigma:0);
       false
     with Not_found -> true)

let () =
  Alcotest.run "nsigma_core"
    [
      ( "cell_model",
        [
          Alcotest.test_case "table-1 terms" `Quick test_terms_match_table1;
          Alcotest.test_case "gaussian zero" `Quick test_gaussian_data_zero_coeffs;
          Alcotest.test_case "lognormal family" `Slow test_lognormal_family_fit;
          Alcotest.test_case "empty fit" `Quick test_fit_requires_data;
          Alcotest.test_case "bad sigma" `Quick test_predict_rejects_bad_sigma;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "reference point" `Slow test_calibration_at_reference;
          Alcotest.test_case "tracks conditions" `Slow test_calibration_tracks_conditions;
          Alcotest.test_case "clamps" `Slow test_calibration_physical_clamps;
          Alcotest.test_case "surface mode" `Slow test_calibration_surface_mode;
          Alcotest.test_case "serialisation" `Slow test_calibration_serialisation;
        ] );
      ( "wire_model",
        [
          Alcotest.test_case "theoretical X" `Quick test_theoretical_x;
          Alcotest.test_case "eq 7" `Quick test_variability_eq7;
          Alcotest.test_case "eq 9" `Quick test_quantile_eq9;
          Alcotest.test_case "driver strength" `Quick test_stronger_driver_less_variability;
          Alcotest.test_case "fit scales" `Quick test_fit_scales_recovers;
          Alcotest.test_case "serialisation" `Quick test_wire_model_serialisation;
        ] );
      ( "model",
        [
          Alcotest.test_case "quantiles ordered" `Slow test_model_build_and_quantiles_ordered;
          Alcotest.test_case "wire quantile" `Slow test_model_wire_quantile;
          Alcotest.test_case "save/load" `Slow test_model_save_load;
          Alcotest.test_case "missing cell" `Slow test_model_missing_cell_raises;
        ] );
    ]
