(* Tests for the technology / variation substrate. *)

module T = Nsigma_process.Technology
module Corner = Nsigma_process.Corner
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.default_28nm

let test_thermal_voltage () =
  (* kT/q at 298.15 K ≈ 25.7 mV. *)
  check_close ~eps:1e-3 "Ut at 25C" 0.0257 (T.thermal_voltage tech)

let test_with_vdd () =
  let t6 = T.with_vdd tech 0.6 in
  check_close "vdd changed" 0.6 t6.T.vdd_nominal;
  check_close "other fields preserved" tech.T.vth0_n t6.T.vth0_n

let test_pelgrom_scaling () =
  (* σ(Vth) halves when area quadruples. *)
  let s1 = T.sigma_vth_local tech ~width:tech.T.width_n in
  let s4 = T.sigma_vth_local tech ~width:(4.0 *. tech.T.width_n) in
  check_close ~eps:1e-9 "1/√4 scaling" (s1 /. 2.0) s4;
  Alcotest.(check bool) "x1 sigma in plausible mV range" true
    (s1 > 0.005 && s1 < 0.05)

let test_corner_apply () =
  let ss = Corner.{ process = Slow; vdd = 0.6; temp_celsius = 125.0 } in
  let t = Corner.apply tech ss in
  check_close "corner vdd" 0.6 t.T.vdd_nominal;
  check_close "corner temp" (125.0 +. 273.15) t.T.temp_kelvin;
  Alcotest.(check bool) "slow corner raises vth" true (t.T.vth0_n > tech.T.vth0_n);
  let ff = Corner.apply tech Corner.{ process = Fast; vdd = 0.6; temp_celsius = 25.0 } in
  Alcotest.(check bool) "fast corner lowers vth" true (ff.T.vth0_n < tech.T.vth0_n)

let test_corner_constants () =
  check_close "near-threshold corner vdd" 0.6 Corner.near_threshold.Corner.vdd;
  check_close "nominal corner vdd" 0.9 Corner.nominal.Corner.vdd

let test_nominal_sample_is_zero () =
  let s = Variation.nominal in
  check_close "no global nmos shift" 0.0 s.Variation.global.Variation.dvth_n;
  check_close "no local shift" 0.0
    (Variation.local_dvth s tech ~width:tech.T.width_n)

let test_global_distribution () =
  let g = Rng.create ~seed:5 in
  let samples = Variation.draw_many tech g 20_000 in
  let dvths = Array.map (fun s -> s.Variation.global.Variation.dvth_n) samples in
  let s = Moments.summary_of_array dvths in
  check_close ~eps:0.02 "global dvth mean 0" 1.0 (1.0 +. s.Moments.mean);
  check_close ~eps:0.03 "global dvth sigma" tech.T.sigma_vth_global s.Moments.std

let test_local_distribution () =
  let g = Rng.create ~seed:6 in
  let sample = Variation.draw tech g in
  let w = tech.T.width_n in
  let locals = Array.init 20_000 (fun _ -> Variation.local_dvth sample tech ~width:w) in
  let s = Moments.summary_of_array locals in
  check_close ~eps:0.03 "local dvth sigma = Pelgrom" (T.sigma_vth_local tech ~width:w)
    s.Moments.std

let test_draw_determinism () =
  let s1 = Variation.draw tech (Rng.create ~seed:9) in
  let s2 = Variation.draw tech (Rng.create ~seed:9) in
  check_close "same global from same seed" s1.Variation.global.Variation.dvth_n
    s2.Variation.global.Variation.dvth_n;
  check_close "same locals from same seed"
    (Variation.local_dvth s1 tech ~width:1e-6)
    (Variation.local_dvth s2 tech ~width:1e-6)

let () =
  Alcotest.run "nsigma_process"
    [
      ( "technology",
        [
          Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage;
          Alcotest.test_case "with_vdd" `Quick test_with_vdd;
          Alcotest.test_case "pelgrom scaling" `Quick test_pelgrom_scaling;
        ] );
      ( "corner",
        [
          Alcotest.test_case "apply" `Quick test_corner_apply;
          Alcotest.test_case "constants" `Quick test_corner_constants;
        ] );
      ( "variation",
        [
          Alcotest.test_case "nominal is zero" `Quick test_nominal_sample_is_zero;
          Alcotest.test_case "global distribution" `Quick test_global_distribution;
          Alcotest.test_case "local distribution" `Quick test_local_distribution;
          Alcotest.test_case "determinism" `Quick test_draw_determinism;
        ] );
    ]
