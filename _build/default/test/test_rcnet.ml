(* Tests for the RC-network substrate: tree invariants, Elmore/D2M
   analytics on hand-computable cases, SPEF round-trips, generators. *)

module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Spef = Nsigma_rcnet.Spef
module Wire_gen = Nsigma_rcnet.Wire_gen
module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Rng = Nsigma_stats.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.default_28nm

let simple_chain () =
  (* root -(R1=100)- n1(C=1f) -(R2=200)- n2(C=2f), tap at n2. *)
  Rctree.create
    ~nodes:
      [|
        { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.5e-15 };
        { Rctree.name = "n1"; parent = 0; res = 100.0; cap = 1e-15 };
        { Rctree.name = "n2"; parent = 1; res = 200.0; cap = 2e-15 };
      |]
    ~taps:[| 2 |]

let branched () =
  (* root - n1 - {n2, n3}: two leaves. *)
  Rctree.create
    ~nodes:
      [|
        { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.0 };
        { Rctree.name = "n1"; parent = 0; res = 100.0; cap = 1e-15 };
        { Rctree.name = "n2"; parent = 1; res = 50.0; cap = 2e-15 };
        { Rctree.name = "n3"; parent = 1; res = 80.0; cap = 3e-15 };
      |]
    ~taps:[| 2; 3 |]

let test_create_validates () =
  Alcotest.check_raises "child before parent"
    (Invalid_argument "Rctree.create: parents must precede children") (fun () ->
      ignore
        (Rctree.create
           ~nodes:
             [|
               { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.0 };
               { Rctree.name = "bad"; parent = 5; res = 1.0; cap = 0.0 };
             |]
           ~taps:[||]));
  Alcotest.check_raises "negative resistance"
    (Invalid_argument "Rctree.create: segment resistance must be positive")
    (fun () ->
      ignore
        (Rctree.create
           ~nodes:
             [|
               { Rctree.name = "root"; parent = -1; res = 0.0; cap = 0.0 };
               { Rctree.name = "n"; parent = 0; res = -2.0; cap = 0.0 };
             |]
           ~taps:[||]))

let test_totals () =
  let t = simple_chain () in
  check_close "total cap" 3.5e-15 (Rctree.total_cap t);
  check_close "total res" 300.0 (Rctree.total_res t)

let test_downstream_cap () =
  let t = branched () in
  let down = Rctree.downstream_cap t in
  check_close "root sees all" 6e-15 down.(0);
  check_close "n1 subtree" 6e-15 down.(1);
  check_close "leaf n2" 2e-15 down.(2)

let test_path_to_root () =
  let t = branched () in
  Alcotest.(check (list int)) "path from n3" [ 3; 1; 0 ] (Rctree.path_to_root t 3)

let test_add_cap () =
  let t = simple_chain () in
  let t2 = Rctree.add_cap t 2 1e-15 in
  check_close "added" (Rctree.total_cap t +. 1e-15) (Rctree.total_cap t2)

let test_scale () =
  let t = simple_chain () in
  let t2 = Rctree.scale t ~res_factor:2.0 ~cap_factor:0.5 in
  check_close "res doubled" 600.0 (Rctree.total_res t2);
  check_close "cap halved" 1.75e-15 (Rctree.total_cap t2)

let test_elmore_hand_computed () =
  (* Chain: T(n2) = R1·(C1+C2) + R2·C2 = 100·3f + 200·2f = 700 fs. *)
  let t = simple_chain () in
  check_close ~eps:1e-12 "chain Elmore" 700e-15 (Elmore.delay_to_tap t)

let test_elmore_branched () =
  (* T(n2) = R1·(C1+C2+C3) + R2·C2 = 100·6f + 50·2f = 700fs.
     T(n3) = 100·6f + 80·3f = 840fs. *)
  let t = branched () in
  let d = Elmore.delays t in
  check_close ~eps:1e-12 "tap n2" 700e-15 d.(2);
  check_close ~eps:1e-12 "tap n3" 840e-15 d.(3)

let test_elmore_driver_res () =
  let t = simple_chain () in
  let base = Elmore.delay_to_tap t in
  let with_drv = Elmore.delay_to_tap ~driver_res:1000.0 t in
  (* Driver resistance adds R_drv · C_total. *)
  check_close ~eps:1e-12 "driver term" (base +. (1000.0 *. 3.5e-15)) with_drv

let test_second_moment_positive () =
  let t = simple_chain () in
  let m2 = Elmore.second_moments t in
  Alcotest.(check bool) "m2 positive at tap" true (m2.(2) > 0.0)

let test_d2m_below_elmore () =
  (* D2M is known to underestimate relative to Elmore on RC chains. *)
  let t = simple_chain () in
  let d2m = Elmore.d2m_at t 2 and elm = Elmore.delay_at t 2 in
  Alcotest.(check bool) "0 < D2M <= Elmore" true (d2m > 0.0 && d2m <= elm)

let test_ladder_properties () =
  let t = Rctree.ladder ~segments:10 ~res_per_seg:100.0 ~cap_per_seg:1e-15 in
  Alcotest.(check int) "nodes" 11 (Rctree.n_nodes t);
  check_close "total res" 1000.0 (Rctree.total_res t);
  check_close "total cap" 10e-15 (Rctree.total_cap t);
  (* Distributed-line Elmore ≈ RC/2 for many segments. *)
  let e = Elmore.delay_to_tap t in
  check_close ~eps:0.06 "≈ RC/2" (1000.0 *. 10e-15 /. 2.0) e

let test_spef_roundtrip_chain () =
  let t = branched () in
  let text = Spef.to_string ~name:"net1" t in
  match Spef.of_string text with
  | [ (name, t2) ] ->
    Alcotest.(check string) "name" "net1" name;
    check_close "cap preserved" (Rctree.total_cap t) (Rctree.total_cap t2);
    check_close "res preserved" (Rctree.total_res t) (Rctree.total_res t2);
    check_close "elmore preserved" (Elmore.delays t).(3)
      (Elmore.delays t2).(Array.length t2.Rctree.nodes - 1);
    Alcotest.(check int) "taps preserved" 2 (Array.length t2.Rctree.taps)
  | _ -> Alcotest.fail "expected exactly one net"

let test_spef_multiple_nets () =
  let t1 = simple_chain () and t2 = branched () in
  let text = Spef.to_string ~name:"a" t1 ^ Spef.to_string ~name:"b" t2 in
  let nets = Spef.of_string text in
  Alcotest.(check int) "two nets" 2 (List.length nets)

let test_spef_rejects_garbage () =
  Alcotest.(check bool) "raises on garbage" true
    (try
       ignore (Spef.of_string "*D_NET x\nnonsense line here\n*END\n");
       false
     with Failure _ -> true)

let test_random_tree_structure () =
  let g = Rng.create ~seed:91 in
  for _ = 1 to 20 do
    let t = Wire_gen.random_tree tech Wire_gen.default_spec g in
    Alcotest.(check bool) "has taps" true (Array.length t.Rctree.taps > 0);
    Alcotest.(check bool) "positive parasitics" true
      (Rctree.total_res t > 0.0 && Rctree.total_cap t > 0.0)
  done

let test_point_to_point_length () =
  let t = Wire_gen.point_to_point tech ~length_um:100.0 ~segments:10 in
  check_close ~eps:1e-9 "R = r/um * len" (tech.T.wire_res_per_um *. 100.0)
    (Rctree.total_res t);
  check_close ~eps:1e-9 "C = c/um * len" (tech.T.wire_cap_per_um *. 100.0)
    (Rctree.total_cap t)

let test_vary_perturbs_but_preserves_structure () =
  let g = Rng.create ~seed:92 in
  let t = Wire_gen.point_to_point tech ~length_um:50.0 ~segments:5 in
  let sample = Variation.draw tech g in
  let t2 = Wire_gen.vary tech sample t in
  Alcotest.(check int) "same node count" (Rctree.n_nodes t) (Rctree.n_nodes t2);
  Alcotest.(check bool) "R changed" true
    (Rctree.total_res t2 <> Rctree.total_res t);
  Alcotest.(check bool) "R within clip bounds" true
    (Rctree.total_res t2 > 0.5 *. Rctree.total_res t
    && Rctree.total_res t2 < 1.5 *. Rctree.total_res t)

let test_vary_nominal_identity () =
  let t = Wire_gen.point_to_point tech ~length_um:50.0 ~segments:5 in
  let t2 = Wire_gen.vary tech Variation.nominal t in
  check_close "nominal sample leaves R" (Rctree.total_res t) (Rctree.total_res t2);
  check_close "nominal sample leaves C" (Rctree.total_cap t) (Rctree.total_cap t2)

let test_for_fanout_taps () =
  let g = Rng.create ~seed:93 in
  List.iter
    (fun fanout ->
      let t = Wire_gen.for_fanout tech ~fanout g in
      Alcotest.(check int) "one tap per sink" fanout (Array.length t.Rctree.taps))
    [ 1; 2; 5; 12 ]

let test_for_fanout_bounded_length () =
  let g = Rng.create ~seed:94 in
  let t1 = Wire_gen.for_fanout tech ~fanout:1 g in
  let t16 = Wire_gen.for_fanout tech ~fanout:16 g in
  (* Total backbone length is bounded regardless of fanout; allow stubs. *)
  Alcotest.(check bool) "high fanout not 16x longer" true
    (Rctree.total_res t16 < 4.0 *. Rctree.total_res t1 +. 2000.0)

let () =
  Alcotest.run "nsigma_rcnet"
    [
      ( "rctree",
        [
          Alcotest.test_case "validation" `Quick test_create_validates;
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "downstream cap" `Quick test_downstream_cap;
          Alcotest.test_case "path to root" `Quick test_path_to_root;
          Alcotest.test_case "add_cap" `Quick test_add_cap;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "ladder" `Quick test_ladder_properties;
        ] );
      ( "elmore",
        [
          Alcotest.test_case "hand-computed chain" `Quick test_elmore_hand_computed;
          Alcotest.test_case "branched" `Quick test_elmore_branched;
          Alcotest.test_case "driver resistance" `Quick test_elmore_driver_res;
          Alcotest.test_case "second moment" `Quick test_second_moment_positive;
          Alcotest.test_case "d2m" `Quick test_d2m_below_elmore;
        ] );
      ( "spef",
        [
          Alcotest.test_case "roundtrip" `Quick test_spef_roundtrip_chain;
          Alcotest.test_case "multiple nets" `Quick test_spef_multiple_nets;
          Alcotest.test_case "rejects garbage" `Quick test_spef_rejects_garbage;
        ] );
      ( "wire_gen",
        [
          Alcotest.test_case "random tree" `Quick test_random_tree_structure;
          Alcotest.test_case "point to point" `Quick test_point_to_point_length;
          Alcotest.test_case "vary perturbs" `Quick test_vary_perturbs_but_preserves_structure;
          Alcotest.test_case "vary nominal" `Quick test_vary_nominal_identity;
          Alcotest.test_case "fanout taps" `Quick test_for_fanout_taps;
          Alcotest.test_case "bounded length" `Quick test_for_fanout_bounded_length;
        ] );
    ]
