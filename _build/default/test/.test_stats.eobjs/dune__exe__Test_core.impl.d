test/test_core.ml: Alcotest Array Filename Float Lazy List Nsigma Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_stats Sys
