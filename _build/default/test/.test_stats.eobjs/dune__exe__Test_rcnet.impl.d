test/test_rcnet.ml: Alcotest Array Float List Nsigma_process Nsigma_rcnet Nsigma_stats
