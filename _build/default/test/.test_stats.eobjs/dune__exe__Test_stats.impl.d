test/test_stats.ml: Alcotest Array Float Fun Gen List Nsigma_stats QCheck QCheck_alcotest String
