test/test_rcnet.mli:
