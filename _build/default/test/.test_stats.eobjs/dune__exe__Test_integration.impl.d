test/test_integration.ml: Alcotest Filename Float Lazy List Nsigma Nsigma_baselines Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_sta Nsigma_stats Sys
