test/test_netlist.ml: Alcotest Array Lazy List Nsigma_liberty Nsigma_netlist Printf QCheck QCheck_alcotest
