test/test_extensions.ml: Alcotest Array Filename Float Format Lazy List Nsigma Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_sta Nsigma_stats String
