test/test_baselines.ml: Alcotest Array Filename Float Lazy List Nsigma_baselines Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_sta Nsigma_stats
