test/test_properties.ml: Alcotest Array Float Gen Hashtbl List Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_sta Nsigma_stats Printf QCheck QCheck_alcotest
