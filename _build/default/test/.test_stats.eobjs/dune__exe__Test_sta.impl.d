test/test_sta.ml: Alcotest Array Filename Float List Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_rcnet Nsigma_sta Nsigma_stats
