test/test_liberty.ml: Alcotest Array Filename Float Lazy List Nsigma_liberty Nsigma_process Nsigma_spice Nsigma_stats Sys
