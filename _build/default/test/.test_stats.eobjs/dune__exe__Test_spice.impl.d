test/test_spice.ml: Alcotest Array Float List Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_stats
