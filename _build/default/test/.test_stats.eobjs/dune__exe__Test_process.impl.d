test/test_process.ml: Alcotest Array Float Nsigma_process Nsigma_stats
