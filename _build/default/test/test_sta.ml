(* Tests for the STA engine: design construction, arrival propagation on
   hand-analysable circuits, critical-path extraction, path MC wiring. *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module N = Nsigma_netlist.Netlist
module B = Nsigma_netlist.Builder
module Design = Nsigma_sta.Design
module Provider = Nsigma_sta.Provider
module Engine = Nsigma_sta.Engine
module Path = Nsigma_sta.Path
module Rctree = Nsigma_rcnet.Rctree

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6

(* A constant-delay provider makes arrival times hand-computable. *)
let unit_provider ~cell_d ~wire_d =
  {
    Provider.label = "unit";
    cell_delay = (fun _ ~edge:_ ~input_slew:_ ~load_cap:_ -> cell_d);
    cell_out_slew = (fun _ ~edge:_ ~input_slew ~load_cap:_ -> input_slew);
    wire_delay = (fun ~net:_ ~driver:_ ~sink:_ ~tree:_ ~tap:_ -> wire_d);
    wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
  }

(* inv chain: a -> I1 -> I2 -> I3 -> out *)
let chain n =
  let b = B.create ~name:"chain" in
  let a = B.input b "a" in
  let net = ref a in
  for _ = 1 to n do
    net := B.inv b !net
  done;
  B.output b !net;
  B.finish b

let test_chain_arrival () =
  let nl = chain 3 in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (unit_provider ~cell_d:10e-12 ~wire_d:2e-12) design in
  (* PI wire is free; 3 cells + 2 inter-cell wires + final PO wire. *)
  check_close ~eps:1e-9 "3 cells + 3 wires" ((3. *. 10e-12) +. (3. *. 2e-12))
    (Engine.circuit_delay report)

let test_chain_path_structure () =
  let nl = chain 4 in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (unit_provider ~cell_d:5e-12 ~wire_d:1e-12) design in
  let path = Engine.critical_path report in
  Alcotest.(check int) "4 hops" 4 (Path.n_stages path);
  (* Edges alternate through inverters. *)
  let edges = List.map (fun h -> h.Path.out_edge) path.Path.hops in
  let alternates =
    let rec go = function
      | a :: (b :: _ as rest) -> a <> b && go rest
      | _ -> true
    in
    go edges
  in
  Alcotest.(check bool) "edges alternate" true alternates

let test_diamond_takes_worst () =
  (* a -> I1 -> N(I1out, I2out); I2 slower via an extra buffer stage. *)
  let b = B.create ~name:"diamond" in
  let a = B.input b "a" in
  let fast = B.inv b a in
  let slow1 = B.inv b a in
  let slow2 = B.inv b (B.inv b slow1) in
  let n = B.nand2 b fast slow2 in
  B.output b n;
  B.finish b
  |> fun nl ->
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (unit_provider ~cell_d:10e-12 ~wire_d:0.0) design in
  (* Slow branch: 3 inverters + nand = 4 cells. *)
  check_close ~eps:1e-9 "worst branch wins" (4. *. 10e-12) (Engine.circuit_delay report);
  let path = Engine.critical_path report in
  Alcotest.(check int) "path length 4" 4 (Path.n_stages path)

let test_unate_edge_flip () =
  let nl = chain 2 in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (unit_provider ~cell_d:1e-12 ~wire_d:0.0) design in
  let out_net = nl.N.primary_outputs.(0) in
  (* Both polarities should exist at the output of a 2-inverter chain. *)
  Alcotest.(check bool) "rise arrival exists" true
    (Engine.arrival report ~net:out_net ~edge:Provider.Rise <> None);
  Alcotest.(check bool) "fall arrival exists" true
    (Engine.arrival report ~net:out_net ~edge:Provider.Fall <> None)

let test_design_tap_mapping () =
  let b = B.create ~name:"fanout" in
  let a = B.input b "a" in
  let hub = B.inv b a in
  let s1 = B.inv b hub and s2 = B.inv b hub and s3 = B.inv b hub in
  B.output b s1;
  B.output b s2;
  B.output b s3;
  let nl = B.finish b in
  let design = Design.attach_parasitics tech nl in
  let hub_net = nl.N.gates.(0).N.output in
  let tree = design.Design.parasitics.(hub_net) in
  Alcotest.(check int) "3 taps for 3 sinks" 3 (Array.length tree.Rctree.taps);
  let t0 = Design.tap_of_sink design ~net:hub_net ~sink_index:0 in
  let t1 = Design.tap_of_sink design ~net:hub_net ~sink_index:1 in
  Alcotest.(check bool) "distinct taps" true (t0 <> t1)

let test_total_load_includes_pins () =
  let nl = chain 2 in
  let design = Design.attach_parasitics tech nl in
  let net = nl.N.gates.(0).N.output in
  let wire_cap = Rctree.total_cap design.Design.parasitics.(net) in
  let load = Design.total_load tech design ~net in
  let pin = Cell.input_cap tech (Cell.make Cell.Inv ~strength:1) in
  check_close ~eps:1e-12 "wire + pin" (wire_cap +. pin) load

let test_real_provider_on_benchmark () =
  (* Run the nominal provider end-to-end on a small real circuit. *)
  let cells =
    List.concat_map
      (fun k -> [ Cell.make k ~strength:1; Cell.make k ~strength:2;
                  Cell.make k ~strength:4; Cell.make k ~strength:8 ])
      Cell.all_kinds
  in
  let lib =
    Nsigma_liberty.Library.load_or_characterize ~n_mc:200
      ~slews:[| 10e-12; 100e-12; 300e-12 |]
      ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_sta.lvf")
      tech cells
  in
  let bm = List.hd Nsigma_netlist.Benchmarks.small_variants in
  let nl = bm.Nsigma_netlist.Benchmarks.generate () in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let delay = Engine.circuit_delay report in
  Alcotest.(check bool) "plausible circuit delay" true
    (delay > 50e-12 && delay < 10e-9);
  let path = Engine.critical_path report in
  Alcotest.(check bool) "path non-empty" true (Path.n_stages path > 2);
  (* Path total equals the circuit delay. *)
  check_close ~eps:1e-9 "path total = circuit delay" delay path.Path.total;
  (* Worst paths are sorted. *)
  let paths = Engine.worst_paths report ~k:3 in
  let totals = List.map (fun p -> p.Path.total) paths in
  Alcotest.(check bool) "sorted worst-first" true
    (totals = List.sort (fun a b -> Float.compare b a) totals);
  (* Path hop bookkeeping: consecutive hops chain through nets. *)
  let rec chained = function
    | a :: (b :: _ as rest) -> a.Path.out_net = b.Path.in_net && chained rest
    | _ -> true
  in
  Alcotest.(check bool) "hops chain" true (chained path.Path.hops)

let test_path_mc_runs () =
  let cells = [ Cell.make Cell.Inv ~strength:1; Cell.make Cell.Inv ~strength:2 ] in
  let lib =
    Nsigma_liberty.Library.load_or_characterize ~n_mc:150
      ~slews:[| 10e-12; 100e-12 |]
      ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_sta2.lvf")
      tech cells
  in
  let nl = chain 5 in
  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let path = Engine.critical_path report in
  let stats = Nsigma_sta.Path_mc.run ~n:120 ~steps:120 tech design path in
  let m = stats.Nsigma_sta.Path_mc.moments in
  Alcotest.(check bool) "positive mean" true (m.Nsigma_stats.Moments.mean > 0.0);
  Alcotest.(check bool) "quantiles ordered" true
    (stats.Nsigma_sta.Path_mc.quantile (-3) < stats.Nsigma_sta.Path_mc.quantile 0
    && stats.Nsigma_sta.Path_mc.quantile 0 < stats.Nsigma_sta.Path_mc.quantile 3);
  (* Nominal STA total should sit inside the MC span. *)
  Alcotest.(check bool) "nominal within MC span" true
    (path.Path.total > stats.Nsigma_sta.Path_mc.quantile (-3) /. 1.5
    && path.Path.total < stats.Nsigma_sta.Path_mc.quantile 3 *. 1.5)

let () =
  Alcotest.run "nsigma_sta"
    [
      ( "engine",
        [
          Alcotest.test_case "chain arrivals" `Quick test_chain_arrival;
          Alcotest.test_case "chain path" `Quick test_chain_path_structure;
          Alcotest.test_case "diamond worst" `Quick test_diamond_takes_worst;
          Alcotest.test_case "edge polarity" `Quick test_unate_edge_flip;
        ] );
      ( "design",
        [
          Alcotest.test_case "tap mapping" `Quick test_design_tap_mapping;
          Alcotest.test_case "total load" `Quick test_total_load_includes_pins;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "benchmark STA" `Slow test_real_provider_on_benchmark;
          Alcotest.test_case "path MC" `Slow test_path_mc_runs;
        ] );
    ]
