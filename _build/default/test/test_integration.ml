(* End-to-end integration: characterise a mini library, fit the N-sigma
   model, run STA + path Monte-Carlo on a generated circuit, and verify
   the model's sigma-level path estimates track the MC reference — a
   miniature of the paper's Table III flow. *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Model = Nsigma.Model
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc
module Moments = Nsigma_stats.Moments
module Bm = Nsigma_netlist.Benchmarks

let tech = T.with_vdd T.default_28nm 0.6

let library =
  lazy
    (let cells =
       List.concat_map
         (fun k ->
           [ Cell.make k ~strength:1; Cell.make k ~strength:2;
             Cell.make k ~strength:4; Cell.make k ~strength:8 ])
         Cell.all_kinds
     in
     Library.load_or_characterize ~n_mc:250
       ~slews:[| 10e-12; 50e-12; 150e-12; 300e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_integ.lvf")
       tech cells)

let test_full_flow_small_circuit () =
  let lib = Lazy.force library in
  let model = Model.build lib in
  let bm = List.hd Bm.small_variants in
  let design = Design.attach_parasitics tech (bm.Bm.generate ()) in
  let report = Engine.analyze tech (Provider.nominal lib) design in
  let path = Engine.critical_path report in
  let mc = Path_mc.run ~n:250 ~steps:140 tech design path in
  let rel n =
    let model_q = Model.path_quantile_of_path model design path ~sigma:n in
    let mc_q = mc.Path_mc.quantile n in
    (model_q -. mc_q) /. mc_q
  in
  (* The paper's Table III keeps path errors below ~8%; with a small MC
     population we allow ~15% before declaring breakage. *)
  List.iter
    (fun n ->
      let e = rel n in
      if Float.abs e > 0.15 then
        Alcotest.failf "sigma %+d path error %.1f%% out of band" n (100.0 *. e))
    [ -3; 0; 3 ];
  (* The N-sigma model must at least match the PrimeTime-like corner
     timer at +3σ (on this tiny circuit with a 250-sample MC reference
     the two can land within the MC noise of each other, so allow a 5%
     margin; Table III in the bench shows the real separation). *)
  let pt3 =
    Engine.circuit_delay
      (Engine.analyze tech
         (Nsigma_baselines.Primetime_like.provider lib ~sigma:3 ())
         design)
  in
  let mc3 = mc.Path_mc.quantile 3 in
  let model3 = Model.path_quantile_of_path model design path ~sigma:3 in
  Alcotest.(check bool) "ours competitive with corner timer at +3σ" true
    (Float.abs (model3 -. mc3) /. mc3
    <= (Float.abs (pt3 -. mc3) /. mc3) +. 0.05)

let test_sigma_monotonicity_full_circuit () =
  let lib = Lazy.force library in
  let model = Model.build lib in
  let design =
    Design.attach_parasitics tech
      (Nsigma_netlist.Generators.size_for_fanout
         (Nsigma_netlist.Generators.random_logic ~name:"mono" ~n_inputs:8
            ~n_gates:60 ~depth:8 ~seed:7))
  in
  let q n = Model.path_quantile model design ~sigma:n in
  let values = List.map q [ -3; -2; -1; 0; 1; 2; 3 ] in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "circuit quantiles ascend with sigma" true
    (ascending values)

let test_model_persistence_full () =
  let lib = Lazy.force library in
  let model = Model.build lib in
  let path = Filename.temp_file "nsigma_integ" ".coeffs" in
  Model.save model path;
  let model2 = Model.load lib path in
  Sys.remove path;
  let design =
    Design.attach_parasitics tech
      (Nsigma_netlist.Generators.size_for_fanout
         (Nsigma_netlist.Generators.random_logic ~name:"persist" ~n_inputs:6
            ~n_gates:40 ~depth:6 ~seed:9))
  in
  let q1 = Model.path_quantile model design ~sigma:3 in
  let q2 = Model.path_quantile model2 design ~sigma:3 in
  if Float.abs (q1 -. q2) > 1e-6 *. q1 then
    Alcotest.failf "persisted model diverges: %.6g vs %.6g" q1 q2

let () =
  Alcotest.run "nsigma_integration"
    [
      ( "full flow",
        [
          Alcotest.test_case "table-III miniature" `Slow test_full_flow_small_circuit;
          Alcotest.test_case "sigma monotonicity" `Slow test_sigma_monotonicity_full_circuit;
          Alcotest.test_case "model persistence" `Slow test_model_persistence_full;
        ] );
    ]
