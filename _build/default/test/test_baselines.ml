(* Tests for the baseline models: NN substrate, LSN/Burr fits,
   PrimeTime-like and correction providers. *)

module T = Nsigma_process.Technology
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Nn = Nsigma_baselines.Nn
module Lsn = Nsigma_baselines.Lsn_model
module Burr = Nsigma_baselines.Burr_model
module Pt = Nsigma_baselines.Primetime_like
module Correction = Nsigma_baselines.Correction_model
module Provider = Nsigma_sta.Provider
module Engine = Nsigma_sta.Engine
module Design = Nsigma_sta.Design

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6

(* ---------- NN ---------- *)

let test_nn_fits_linear () =
  let g = Rng.create ~seed:201 in
  let inputs = Array.init 200 (fun _ -> [| Rng.gaussian g; Rng.gaussian g |]) in
  let targets = Array.map (fun x -> (2.0 *. x.(0)) -. (0.5 *. x.(1)) +. 1.0) inputs in
  let net = Nn.create ~layers:[ 2; 8; 1 ] () in
  let report = Nn.train ~epochs:300 net ~inputs ~targets in
  Alcotest.(check bool) "converged" true (report.Nn.final_loss < 0.01);
  let pred = Nn.predict net [| 0.5; -0.5 |] in
  check_close ~eps:0.1 "linear prediction" 2.25 pred

let test_nn_fits_nonlinear () =
  let g = Rng.create ~seed:202 in
  let inputs = Array.init 300 (fun _ -> [| Rng.uniform_range g ~lo:(-2.0) ~hi:2.0 |]) in
  let targets = Array.map (fun x -> x.(0) *. x.(0)) inputs in
  let net = Nn.create ~layers:[ 1; 12; 12; 1 ] () in
  let report = Nn.train ~epochs:800 ~learning_rate:0.02 net ~inputs ~targets in
  Alcotest.(check bool) "nonlinear converged" true (report.Nn.final_loss < 0.02);
  check_close ~eps:0.15 "x^2 at 1.5" 2.25 (Nn.predict net [| 1.5 |])

let test_nn_shape_checks () =
  Alcotest.(check bool) "bad layer spec" true
    (try
       ignore (Nn.create ~layers:[ 3 ] ());
       false
     with Invalid_argument _ -> true);
  let net = Nn.create ~layers:[ 2; 4; 1 ] () in
  Alcotest.(check bool) "feature size mismatch" true
    (try
       ignore (Nn.train net ~inputs:[| [| 1.0 |] |] ~targets:[| 1.0 |]);
       false
     with Invalid_argument _ -> true)

(* ---------- LSN / Burr ---------- *)

let lognormal_sample () =
  let g = Rng.create ~seed:203 in
  Array.init 20_000 (fun _ -> Rng.lognormal g ~mu:(log 50e-12) ~sigma:0.25)

let test_lsn_accurate_on_lognormal () =
  let xs = lognormal_sample () in
  let model = Lsn.fit xs in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  List.iter
    (fun n ->
      let emp =
        Nsigma_stats.Quantile.of_sorted sorted
          (Quantile.probability_of_sigma (float_of_int n))
      in
      let pred = Lsn.quantile model ~sigma:n in
      if Float.abs (pred -. emp) > 0.05 *. emp then
        Alcotest.failf "LSN sigma %d: %.3g vs %.3g" n pred emp)
    [ -3; -1; 0; 1; 3 ]

let test_burr_fits_quantiles () =
  let xs = lognormal_sample () in
  let model = Burr.fit xs in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  (* Burr can track the body well; tails may drift (that is its documented
     weakness) — check the median tightly and the tails loosely. *)
  let emp p = Nsigma_stats.Quantile.of_sorted sorted p in
  check_close ~eps:0.05 "burr median" (emp 0.5) (Burr.quantile_p model 0.5);
  let p3 = Quantile.probability_of_sigma 3.0 in
  Alcotest.(check bool) "burr +3σ within 25%" true
    (Float.abs (Burr.quantile_p model p3 -. emp p3) < 0.25 *. emp p3)

let test_lsn_beats_burr_at_tail () =
  (* The Table-II ordering: on a lognormal-like delay population the LSN
     tail error is smaller than the Burr tail error. *)
  let xs = lognormal_sample () in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let p3 = Quantile.probability_of_sigma 3.0 in
  let emp = Nsigma_stats.Quantile.of_sorted sorted p3 in
  let lsn = Lsn.fit xs and burr = Burr.fit xs in
  let e_lsn = Float.abs (Lsn.quantile_p lsn p3 -. emp) /. emp in
  let e_burr = Float.abs (Burr.quantile_p burr p3 -. emp) /. emp in
  Alcotest.(check bool) "LSN <= Burr at +3σ" true (e_lsn <= e_burr +. 0.01)

(* ---------- Providers ---------- *)

let small_library =
  lazy
    (let cells = [ Cell.make Cell.Inv ~strength:1; Cell.make Cell.Inv ~strength:2 ] in
     Library.load_or_characterize ~n_mc:200
       ~slews:[| 10e-12; 100e-12 |]
       ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_bl.lvf")
       tech cells)

let chain_design () =
  let b = Nsigma_netlist.Builder.create ~name:"chain" in
  let a = Nsigma_netlist.Builder.input b "a" in
  let net = ref a in
  for _ = 1 to 6 do
    net := Nsigma_netlist.Builder.inv b !net
  done;
  Nsigma_netlist.Builder.output b !net;
  Design.attach_parasitics tech (Nsigma_netlist.Builder.finish b)

let test_pt_pessimistic () =
  let lib = Lazy.force small_library in
  let design = chain_design () in
  let nominal = Engine.circuit_delay (Engine.analyze tech (Provider.nominal lib) design) in
  let pt3 =
    Engine.circuit_delay (Engine.analyze tech (Pt.provider lib ~sigma:3 ()) design)
  in
  Alcotest.(check bool) "PT +3σ above nominal" true (pt3 > nominal);
  (* Per-stage μ+3σ accumulation: at least 20% above the mean timer for a
     near-threshold chain. *)
  Alcotest.(check bool) "PT margin substantial" true (pt3 > 1.2 *. nominal)

let test_correction_calibrates () =
  let lib = Lazy.force small_library in
  let corr = Correction.calibrate ~n_reference:6 tech lib in
  let residual, derate = Correction.factors corr in
  Alcotest.(check bool) "residual positive" true (residual > 0.1 && residual < 5.0);
  Alcotest.(check bool) "derate plausible" true (derate > 0.0 && derate < 1.0);
  let design = chain_design () in
  let d3 =
    Engine.circuit_delay
      (Engine.analyze tech (Correction.provider corr lib ~sigma:3) design)
  in
  let d0 =
    Engine.circuit_delay
      (Engine.analyze tech (Correction.provider corr lib ~sigma:0) design)
  in
  Alcotest.(check bool) "sigma ordering" true (d3 > d0)

let () =
  Alcotest.run "nsigma_baselines"
    [
      ( "nn",
        [
          Alcotest.test_case "linear" `Quick test_nn_fits_linear;
          Alcotest.test_case "nonlinear" `Slow test_nn_fits_nonlinear;
          Alcotest.test_case "shape checks" `Quick test_nn_shape_checks;
        ] );
      ( "distribution models",
        [
          Alcotest.test_case "LSN on lognormal" `Slow test_lsn_accurate_on_lognormal;
          Alcotest.test_case "Burr quantiles" `Slow test_burr_fits_quantiles;
          Alcotest.test_case "LSN vs Burr tail" `Slow test_lsn_beats_burr_at_tail;
        ] );
      ( "providers",
        [
          Alcotest.test_case "PT pessimism" `Slow test_pt_pessimistic;
          Alcotest.test_case "correction" `Slow test_correction_calibrates;
        ] );
    ]
