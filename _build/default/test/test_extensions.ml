(* Tests for the extension modules: effective capacitance, timing
   reports/slacks, the ±6σ extension, and the wire lab. *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Rctree = Nsigma_rcnet.Rctree
module Ceff = Nsigma_rcnet.Ceff
module Wire_gen = Nsigma_rcnet.Wire_gen
module B = Nsigma_netlist.Builder
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Timing_report = Nsigma_sta.Timing_report
module Model = Nsigma.Model
module Sigma_ext = Nsigma.Sigma_ext
module Wire_lab = Nsigma.Wire_lab
module Cell_model = Nsigma.Cell_model
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Rng = Nsigma_stats.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let tech = T.with_vdd T.default_28nm 0.6

(* ---------- Ceff ---------- *)

let ladder = Rctree.ladder ~segments:10 ~res_per_seg:500.0 ~cap_per_seg:2e-15

let test_ceff_bounds () =
  let total = Rctree.total_cap ladder in
  let ceff = Ceff.effective ~driver_resistance:1000.0 ladder in
  Alcotest.(check bool) "0 < ceff < total" true (ceff > 0.0 && ceff < total)

let test_ceff_monotone_in_driver () =
  (* A weaker driver (larger R) sees more of the wire. *)
  let c r = Ceff.effective ~driver_resistance:r ladder in
  Alcotest.(check bool) "monotone" true (c 100.0 < c 1000.0 && c 1000.0 < c 100000.0)

let test_ceff_approaches_total () =
  let total = Rctree.total_cap ladder in
  check_close ~eps:0.01 "huge driver resistance sees all"
    total
    (Ceff.effective ~driver_resistance:1e9 ladder)

let test_ceff_no_resistance_no_shielding () =
  (* A tree with only the root node has nothing to shield. *)
  let lumped =
    Rctree.create
      ~nodes:[| { Rctree.name = "root"; parent = -1; res = 0.0; cap = 5e-15 } |]
      ~taps:[| 0 |]
  in
  check_close "lumped cap unshielded" 5e-15
    (Ceff.effective ~driver_resistance:50.0 lumped)

let test_ceff_rejects_bad_resistance () =
  Alcotest.(check bool) "non-positive resistance" true
    (try
       ignore (Ceff.effective ~driver_resistance:0.0 ladder);
       false
     with Invalid_argument _ -> true)

let test_drive_resistance_scales () =
  let r1 = Cell.drive_resistance tech (Cell.make Cell.Inv ~strength:1) in
  let r4 = Cell.drive_resistance tech (Cell.make Cell.Inv ~strength:4) in
  Alcotest.(check bool) "positive" true (r1 > 0.0);
  check_close ~eps:0.05 "4x strength, R/4" (r1 /. 4.0) r4

let test_effective_load_below_total () =
  let b = B.create ~name:"eff" in
  let a = B.input b "a" in
  let n1 = B.inv b a in
  B.output b (B.inv b n1);
  let nl = B.finish b in
  let design = Design.attach_parasitics tech nl in
  let net = nl.Nsigma_netlist.Netlist.gates.(0).Nsigma_netlist.Netlist.output in
  let total = Design.total_load tech design ~net in
  let eff =
    Design.effective_load tech design ~net ~driver:(Cell.make Cell.Inv ~strength:1)
  in
  Alcotest.(check bool) "eff <= total" true (eff <= total +. 1e-21);
  Alcotest.(check bool) "eff > pin-only" true (eff > 0.0)

(* ---------- Timing_report ---------- *)

let unit_provider d =
  {
    Provider.label = "unit";
    cell_delay = (fun _ ~edge:_ ~input_slew:_ ~load_cap:_ -> d);
    cell_out_slew = (fun _ ~edge:_ ~input_slew ~load_cap:_ -> input_slew);
    wire_delay = (fun ~net:_ ~driver:_ ~sink:_ ~tree:_ ~tap:_ -> 0.0);
    wire_slew_degrade = (fun ~wire_delay:_ ~slew_at_root -> slew_at_root);
  }

let chain_design n =
  let b = B.create ~name:"chain" in
  let a = B.input b "a" in
  let net = ref a in
  for _ = 1 to n do
    net := B.inv b !net
  done;
  B.output b !net;
  Design.attach_parasitics tech (B.finish b)

let test_slack_arithmetic () =
  let design = chain_design 5 in
  let report = Engine.analyze tech (unit_provider 10e-12) design in
  let tr = Timing_report.of_report ~period:100e-12 report in
  (* 5 cells x 10ps = 50ps arrival; slack 50ps. *)
  check_close ~eps:1e-9 "wns" 50e-12 tr.Timing_report.wns;
  check_close "tns zero when met" 0.0 tr.Timing_report.tns;
  Alcotest.(check int) "no violations" 0 (List.length (Timing_report.violations tr))

let test_slack_violation () =
  let design = chain_design 5 in
  let report = Engine.analyze tech (unit_provider 10e-12) design in
  let tr = Timing_report.of_report ~period:30e-12 report in
  Alcotest.(check bool) "violated" true (tr.Timing_report.wns < 0.0);
  check_close ~eps:1e-9 "wns = 30 - 50" (-20e-12) tr.Timing_report.wns;
  Alcotest.(check bool) "tns <= wns" true
    (tr.Timing_report.tns <= tr.Timing_report.wns);
  Alcotest.(check bool) "has violations" true
    (List.length (Timing_report.violations tr) > 0)

let test_report_renders () =
  let design = chain_design 3 in
  let report = Engine.analyze tech (unit_provider 10e-12) design in
  let tr = Timing_report.of_report ~period:100e-12 report in
  let nl = design.Design.netlist in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let text = Format.asprintf "%a" (Timing_report.pp nl) tr in
  Alcotest.(check bool) "mentions WNS" true (contains text "WNS");
  let path = Engine.critical_path report in
  let path_text =
    Format.asprintf "%a" (Timing_report.pp_path nl ~period:100e-12) path
  in
  Alcotest.(check bool) "path report mentions slack" true
    (contains path_text "slack")

(* ---------- Sigma_ext ---------- *)

let synthetic_model =
  lazy
    (let g = Rng.create ~seed:404 in
     (* Train on lognormal-family observations. *)
     let obs =
       List.map
         (fun sigma_log ->
           let xs =
             Array.init 20_000 (fun _ ->
                 Nsigma_stats.Rng.lognormal g ~mu:(log 50e-12) ~sigma:sigma_log)
           in
           Array.sort Float.compare xs;
           let quantiles =
             Array.of_list
               (List.map
                  (fun n ->
                    Nsigma_stats.Quantile.of_sorted xs
                      (Quantile.probability_of_sigma (float_of_int n)))
                  Quantile.sigma_levels)
           in
           { Cell_model.moments = Moments.summary_of_array xs; quantiles })
         [ 0.08; 0.12; 0.16; 0.2; 0.25 ]
     in
     (Cell_model.fit obs, List.nth obs 2))

let test_sigma_ext_matches_integer_levels () =
  let cm, obs = Lazy.force synthetic_model in
  List.iter
    (fun n ->
      check_close ~eps:1e-9 "integer level = Cell_model"
        (Cell_model.predict cm obs.Cell_model.moments ~sigma:n)
        (Sigma_ext.quantile cm obs.Cell_model.moments ~level:(float_of_int n)))
    [ -3; -1; 0; 2; 3 ]

let test_sigma_ext_monotone () =
  let cm, obs = Lazy.force synthetic_model in
  let q l = Sigma_ext.quantile cm obs.Cell_model.moments ~level:l in
  let levels = [ -6.0; -4.5; -3.0; -1.5; 0.0; 1.5; 3.0; 4.0; 5.0; 6.0 ] in
  let values = List.map q levels in
  let rec ascending = function
    | a :: (b :: _ as r) -> a < b && ascending r
    | _ -> true
  in
  Alcotest.(check bool) "monotone across the splice" true (ascending values)

let test_sigma_ext_continuous_at_3 () =
  let cm, obs = Lazy.force synthetic_model in
  let q l = Sigma_ext.quantile cm obs.Cell_model.moments ~level:l in
  check_close ~eps:0.02 "continuous at +3" (q 3.0) (q 3.001);
  check_close ~eps:0.02 "continuous at -3" (q (-3.0)) (q (-3.001))

let test_sigma_ext_tail_tracks_lognormal () =
  (* For an exactly-lognormal population the +6σ extension should land
     near the analytic lognormal quantile. *)
  let cm, obs = Lazy.force synthetic_model in
  let m = obs.Cell_model.moments in
  let d = Nsigma_stats.Distribution.Lognormal.fit_moments m in
  let truth =
    Nsigma_stats.Distribution.Lognormal.quantile d
      (Quantile.probability_of_sigma 6.0)
  in
  let got = Sigma_ext.quantile cm m ~level:6.0 in
  if Float.abs (got -. truth) > 0.10 *. truth then
    Alcotest.failf "+6s: got %.3g, lognormal truth %.3g" got truth

let test_sigma_ext_rejects_out_of_range () =
  let cm, obs = Lazy.force synthetic_model in
  Alcotest.(check bool) "level 7 rejected" true
    (try
       ignore (Sigma_ext.quantile cm obs.Cell_model.moments ~level:7.0);
       false
     with Invalid_argument _ -> true)

(* ---------- Wire_lab ---------- *)

let test_wire_lab_measurement () =
  let tree = Wire_gen.point_to_point tech ~length_um:80.0 ~segments:6 in
  let meas =
    Wire_lab.measure ~n:200 ~seed:3 tech ~tree
      ~driver:(Cell.make Cell.Inv ~strength:2)
      ~load:(Cell.make Cell.Inv ~strength:2)
      ()
  in
  Alcotest.(check bool) "positive mean" true
    (meas.Wire_lab.moments.Moments.mean > 0.0);
  Alcotest.(check bool) "elmore positive" true (meas.Wire_lab.elmore > 0.0);
  Alcotest.(check bool) "variability sane" true
    (Wire_lab.variability meas > 0.0 && Wire_lab.variability meas < 0.5);
  Alcotest.(check bool) "quantiles ordered" true
    (Wire_lab.quantile meas ~sigma:(-3) < Wire_lab.quantile meas ~sigma:3)

let test_wire_lab_observations_cover_strengths () =
  let obs = Wire_lab.standard_observations ~n_per_config:30 ~n_trees:1 tech () in
  Alcotest.(check int) "4x4 configs" 16 (List.length obs);
  List.iter
    (fun o ->
      Alcotest.(check bool) "variability positive" true
        (o.Nsigma.Wire_model.measured_variability > 0.0))
    obs

(* ---------- Engine load models ---------- *)

let test_effective_load_model_faster () =
  (* With shielding the same provider must report smaller or equal
     delays, because every lumped load shrinks. *)
  let cells = [ Cell.make Cell.Inv ~strength:1 ] in
  let lib =
    Library.load_or_characterize ~n_mc:120
      ~slews:[| 10e-12; 100e-12 |]
      ~path:(Filename.concat (Filename.get_temp_dir_name ()) "nsigma_test_ext.lvf")
      tech cells
  in
  let design = chain_design 4 in
  let nom = Provider.nominal lib in
  let total = Engine.circuit_delay (Engine.analyze tech nom design) in
  let eff =
    Engine.circuit_delay (Engine.analyze ~load_model:`Effective tech nom design)
  in
  Alcotest.(check bool) "ceff timing <= total-cap timing" true (eff <= total)

let () =
  Alcotest.run "nsigma_extensions"
    [
      ( "ceff",
        [
          Alcotest.test_case "bounds" `Quick test_ceff_bounds;
          Alcotest.test_case "monotone" `Quick test_ceff_monotone_in_driver;
          Alcotest.test_case "limit" `Quick test_ceff_approaches_total;
          Alcotest.test_case "lumped" `Quick test_ceff_no_resistance_no_shielding;
          Alcotest.test_case "bad args" `Quick test_ceff_rejects_bad_resistance;
          Alcotest.test_case "drive resistance" `Quick test_drive_resistance_scales;
          Alcotest.test_case "effective load" `Quick test_effective_load_below_total;
        ] );
      ( "timing_report",
        [
          Alcotest.test_case "slack arithmetic" `Quick test_slack_arithmetic;
          Alcotest.test_case "violations" `Quick test_slack_violation;
          Alcotest.test_case "rendering" `Quick test_report_renders;
        ] );
      ( "sigma_ext",
        [
          Alcotest.test_case "integer levels" `Slow test_sigma_ext_matches_integer_levels;
          Alcotest.test_case "monotone" `Slow test_sigma_ext_monotone;
          Alcotest.test_case "continuity" `Slow test_sigma_ext_continuous_at_3;
          Alcotest.test_case "lognormal tail" `Slow test_sigma_ext_tail_tracks_lognormal;
          Alcotest.test_case "range check" `Slow test_sigma_ext_rejects_out_of_range;
        ] );
      ( "wire_lab",
        [
          Alcotest.test_case "measurement" `Slow test_wire_lab_measurement;
          Alcotest.test_case "observations" `Slow test_wire_lab_observations_cover_strengths;
        ] );
      ( "engine load models",
        [
          Alcotest.test_case "ceff analysis" `Slow test_effective_load_model_faster;
        ] );
    ]
