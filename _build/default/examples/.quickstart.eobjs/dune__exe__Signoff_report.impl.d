examples/signoff_report.ml: Array Format List Nsigma Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_sta Option Printf Sys
