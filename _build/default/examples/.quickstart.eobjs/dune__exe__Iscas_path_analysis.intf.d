examples/iscas_path_analysis.mli:
