examples/pulpino_units.mli:
