examples/voltage_sweep.ml: List Nsigma_liberty Nsigma_process Nsigma_spice Nsigma_stats Printf
