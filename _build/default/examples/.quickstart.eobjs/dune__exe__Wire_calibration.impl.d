examples/wire_calibration.ml: Array List Nsigma_liberty Nsigma_process Nsigma_rcnet Nsigma_spice Nsigma_stats Printf
