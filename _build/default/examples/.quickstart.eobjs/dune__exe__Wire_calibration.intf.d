examples/wire_calibration.mli:
