examples/pulpino_units.ml: Array List Nsigma Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_sta Printf Sys
