examples/quickstart.mli:
