examples/quickstart.ml: Format List Nsigma Nsigma_liberty Nsigma_process Nsigma_rcnet Printf
