examples/signoff_report.mli:
