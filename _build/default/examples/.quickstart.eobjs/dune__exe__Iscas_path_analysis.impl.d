examples/iscas_path_analysis.ml: Array Float List Nsigma Nsigma_baselines Nsigma_liberty Nsigma_netlist Nsigma_process Nsigma_sta Printf Sys Unix
