examples/voltage_sweep.mli:
