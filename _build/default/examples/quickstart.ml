(* Quickstart: characterise two cells, fit the N-sigma model, and query
   cell and wire delay quantiles — the whole public API in ~60 lines.

   Run with:  dune exec examples/quickstart.exe *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Model = Nsigma.Model
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore

let () =
  (* 1. Pick the paper's corner: TT / 0.6 V / 25 °C. *)
  let tech = T.with_vdd T.default_28nm 0.6 in
  Printf.printf "technology %s at %.1f V\n%!" tech.T.name tech.T.vdd_nominal;

  (* 2. Characterise a small library by Monte-Carlo (cached on disk). *)
  let cells =
    [ Cell.make Cell.Inv ~strength:1; Cell.make Cell.Inv ~strength:4;
      Cell.make Cell.Nand2 ~strength:2 ]
  in
  Printf.printf "characterising %d cells (cached in /tmp)...\n%!" (List.length cells);
  let library =
    Library.load_or_characterize ~n_mc:600 ~path:"/tmp/nsigma_quickstart.lvf" tech
      cells
  in

  (* 3. Fit the N-sigma model: Table-I coefficients, per-cell moment
        calibration, wire X coefficients. *)
  let model = Model.build library in
  Format.printf "%a@." Nsigma.Cell_model.pp model.Model.cell_model;

  (* 4. Cell delay quantiles at an arbitrary operating condition. *)
  let nand = Cell.make Cell.Nand2 ~strength:2 in
  Printf.printf "\nNAND2X2 falling-output delay at slew=40ps load=1.2fF:\n";
  List.iter
    (fun sigma ->
      let q =
        Model.cell_quantile model nand ~edge:`Fall ~input_slew:40e-12
          ~load_cap:1.2e-15 ~sigma
      in
      Printf.printf "  T(%+dσ) = %6.2f ps\n" sigma (q *. 1e12))
    [ -3; -2; -1; 0; 1; 2; 3 ];

  (* 5. Wire delay quantiles: Elmore mean + driver/load-aware variability
        (the cell/wire interaction of the paper). *)
  let tree = Rctree.ladder ~segments:6 ~res_per_seg:300.0 ~cap_per_seg:1.5e-15 in
  let tap = 6 in
  let driver = Cell.make Cell.Inv ~strength:1 in
  let load = Some (Cell.make Cell.Inv ~strength:4) in
  Printf.printf "\nwire: Elmore = %.2f ps, X_w = %.4f\n"
    (Elmore.delay_at tree tap *. 1e12)
    (Nsigma.Wire_model.variability model.Model.wire ~driver ~load);
  List.iter
    (fun sigma ->
      let q = Model.wire_quantile model ~tree ~tap ~driver ~load ~sigma in
      Printf.printf "  T_w(%+dσ) = %6.2f ps\n" sigma (q *. 1e12))
    [ -3; 0; 3 ];

  (* 6. Persist the fitted coefficients (Fig. 5's LUT file). *)
  Model.save model "/tmp/nsigma_quickstart.coeffs";
  Printf.printf "\ncoefficients saved to /tmp/nsigma_quickstart.coeffs\n"
