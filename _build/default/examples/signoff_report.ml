(* Statistical sign-off: pick a clock period, analyse a circuit at
   several sigma levels, and print PrimeTime-flavoured slack reports —
   the consumer view of the N-sigma model (endpoint slacks are the
   quantity the calibration literature [5], [8] frames itself around).
   Also demonstrates the ±6σ extension the paper suggests for
   "rigorous situations".

   Run with:  dune exec examples/signoff_report.exe [-- circuit period_ps] *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Model = Nsigma.Model
module Sigma_ext = Nsigma.Sigma_ext
module Bm = Nsigma_netlist.Benchmarks
module N = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Timing_report = Nsigma_sta.Timing_report

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432-small" in
  let tech = T.with_vdd T.default_28nm 0.6 in
  let bm =
    try Bm.find circuit
    with Not_found -> (
      match List.find_opt (fun b -> b.Bm.name = circuit) Bm.small_variants with
      | Some b -> b
      | None -> failwith ("unknown circuit " ^ circuit))
  in
  let nl = bm.Bm.generate () in
  Printf.printf "%s\n%!" (N.stats nl);

  let cells =
    List.concat_map
      (fun k -> List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
      Cell.all_kinds
  in
  let library =
    Library.load_or_characterize ~n_mc:800 ~path:"/tmp/nsigma_example_lib.lvf"
      tech cells
  in
  let model = Model.build library in
  let design = Design.attach_parasitics tech nl in

  (* Choose the clock from the +3σ analysis plus 5% margin, then show how
     each sigma level's slack picture looks against it. *)
  let q3 = Model.path_quantile model design ~sigma:3 in
  let period =
    match Array.length Sys.argv > 2 with
    | true -> float_of_string Sys.argv.(2) *. 1e-12
    | false -> 1.05 *. q3
  in
  Printf.printf "clock period: %.1f ps (+3σ delay %.1f ps + 5%% margin)\n\n"
    (period *. 1e12) (q3 *. 1e12);

  List.iter
    (fun sigma ->
      let report = Engine.analyze tech (Model.provider model ~sigma) design in
      let tr = Timing_report.of_report ~period report in
      Printf.printf "--- sigma %+d ---\n" sigma;
      Format.printf "%a@.@." (Timing_report.pp nl) tr)
    [ 0; 2; 3 ];

  (* The worst path, PrimeTime style, at +3σ. *)
  let report3 = Engine.analyze tech (Model.provider model ~sigma:3) design in
  let path = Engine.critical_path report3 in
  Printf.printf "worst path at +3σ:\n";
  Format.printf "%a@.@." (Timing_report.pp_path nl ~period) path;

  (* High-sigma guard-banding: how much further the tail stretches from
     +3σ to +6σ for the path's slowest cell (the paper's "extended to
     ±6σ" remark, computed analytically — P(+6σ) ≈ 1e-9 is unobservable
     by Monte-Carlo). *)
  (match path.Nsigma_sta.Path.hops with
  | [] -> ()
  | hops ->
    let slowest =
      List.fold_left
        (fun acc h ->
          match acc with
          | Some best
            when best.Nsigma_sta.Path.cell_delay >= h.Nsigma_sta.Path.cell_delay ->
            acc
          | _ -> Some h)
        None hops
      |> Option.get
    in
    let cell = nl.N.gates.(slowest.Nsigma_sta.Path.gate).N.cell in
    Printf.printf "high-sigma tail of the slowest stage (%s):\n" (Cell.name cell);
    List.iter
      (fun level ->
        let q =
          Sigma_ext.cell_quantile model cell ~edge:`Fall
            ~input_slew:slowest.Nsigma_sta.Path.pin_slew
            ~load_cap:slowest.Nsigma_sta.Path.load_cap ~level
        in
        Printf.printf "  T(%+.1fσ) = %7.2f ps\n" level (q *. 1e12))
      [ 3.0; 4.0; 5.0; 6.0 ])
