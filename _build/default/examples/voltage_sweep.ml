(* The Fig. 2 scenario: how an inverter's delay distribution deforms as
   the supply drops from nominal into the near-threshold regime — the
   observation that motivates the whole N-sigma model.

   Run with:  dune exec examples/voltage_sweep.exe *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Cell_sim = Nsigma_spice.Cell_sim
module Monte_carlo = Nsigma_spice.Monte_carlo
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile
module Histogram = Nsigma_stats.Histogram

let () =
  let n_mc = 4000 in
  let inv = Cell.make Cell.Inv ~strength:1 in
  Printf.printf
    "INVX1 delay distribution vs supply voltage (%d MC samples each)\n\n" n_mc;
  Printf.printf "%6s %9s %9s %7s %7s %9s %9s %9s\n" "VDD" "mu(ps)" "sigma(ps)"
    "skew" "kurt" "-3s(ps)" "+3s(ps)" "mu+3sig";
  List.iter
    (fun vdd ->
      let tech = T.with_vdd T.default_28nm vdd in
      let load = Cell.fo4_load tech inv in
      let g = Rng.create ~seed:2026 in
      let delays =
        Monte_carlo.delays tech g ~n:n_mc (fun sample ->
            let arc = Cell.arc tech sample inv ~output_edge:`Fall in
            (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:load)
              .Cell_sim.delay)
      in
      let s = Moments.summary_of_array delays in
      let q n = Quantile.empirical_sigma_level delays n in
      Printf.printf "%5.2fV %9.2f %9.2f %7.3f %7.3f %9.2f %9.2f %9.2f\n%!" vdd
        (s.Moments.mean *. 1e12) (s.Moments.std *. 1e12) s.Moments.skewness
        s.Moments.kurtosis
        (q (-3) *. 1e12)
        (q 3 *. 1e12)
        ((s.Moments.mean +. (3.0 *. s.Moments.std)) *. 1e12))
    [ 0.8; 0.7; 0.6; 0.5 ];
  Printf.printf
    "\nNote how +3σ(empirical) pulls away from μ+3σ(Gaussian) as VDD drops:\n";
  Printf.printf "the distribution grows a heavy right tail, so Gaussian sign-off\n";
  Printf.printf "underestimates the worst case — the paper's Fig. 2 observation.\n\n";
  (* A terminal rendering of the PDFs, coarse but instructive. *)
  List.iter
    (fun vdd ->
      let tech = T.with_vdd T.default_28nm vdd in
      let load = Cell.fo4_load tech inv in
      let g = Rng.create ~seed:2026 in
      let delays =
        Monte_carlo.delays tech g ~n:2000 (fun sample ->
            let arc = Cell.arc tech sample inv ~output_edge:`Fall in
            (Cell_sim.simulate tech arc ~input_slew:10e-12 ~load_cap:load)
              .Cell_sim.delay)
      in
      let h = Histogram.create ~bins:60 delays in
      Printf.printf "%.2fV |%s| %.1f..%.1f ps\n" vdd
        (Histogram.sparkline ~width:60 h)
        (h.Histogram.lo *. 1e12) (h.Histogram.hi *. 1e12))
    [ 0.8; 0.7; 0.6; 0.5 ]
