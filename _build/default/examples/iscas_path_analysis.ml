(* End-to-end statistical path analysis of an ISCAS85-scale circuit —
   one row of the paper's Table III, in miniature:

     1. generate the benchmark netlist and attach parasitics,
     2. run nominal STA and extract the critical path,
     3. golden reference: transistor-level Monte-Carlo of that path,
     4. estimates: PrimeTime-like corner, correction-based, and the
        N-sigma model; compare everything at ±3σ.

   Run with:  dune exec examples/iscas_path_analysis.exe [-- circuit [mc]]
   (default: a reduced c432; pass "c432" for the full-size circuit). *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Model = Nsigma.Model
module Bm = Nsigma_netlist.Benchmarks
module N = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider
module Path = Nsigma_sta.Path
module Path_mc = Nsigma_sta.Path_mc
module Pt = Nsigma_baselines.Primetime_like
module Correction = Nsigma_baselines.Correction_model

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432-small" in
  let n_mc =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 400
  in
  let tech = T.with_vdd T.default_28nm 0.6 in
  let bm =
    try Bm.find circuit
    with Not_found ->
      (match List.find_opt (fun b -> b.Bm.name = circuit) Bm.small_variants with
      | Some b -> b
      | None -> failwith ("unknown circuit " ^ circuit))
  in
  let nl = bm.Bm.generate () in
  Printf.printf "circuit: %s\n%!" (N.stats nl);

  let cells =
    List.concat_map
      (fun k ->
        List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
      Cell.all_kinds
  in
  Printf.printf "loading / characterising library...\n%!";
  let library =
    Library.load_or_characterize ~n_mc:800 ~path:"/tmp/nsigma_example_lib.lvf"
      tech cells
  in
  let model = Model.build library in

  let design = Design.attach_parasitics tech nl in
  let report = Engine.analyze tech (Provider.nominal library) design in
  let path = Engine.critical_path report in
  Printf.printf "nominal critical path: %d stages, %.1f ps\n%!"
    (Path.n_stages path) (path.Path.total *. 1e12);

  Printf.printf "path Monte-Carlo (%d samples)...\n%!" n_mc;
  let t0 = Unix.gettimeofday () in
  let mc = Path_mc.run ~n:n_mc tech design path in
  let mc_time = Unix.gettimeofday () -. t0 in

  let t1 = Unix.gettimeofday () in
  let ours_m3 = Model.path_quantile_of_path model design path ~sigma:(-3) in
  let ours_p3 = Model.path_quantile_of_path model design path ~sigma:3 in
  let model_time = Unix.gettimeofday () -. t1 in

  let pt3 =
    Engine.circuit_delay (Engine.analyze tech (Pt.provider library ~sigma:3 ()) design)
  in
  let corr = Correction.calibrate ~n_reference:10 tech library in
  let corr3 =
    Engine.circuit_delay
      (Engine.analyze tech (Correction.provider corr library ~sigma:3) design)
  in

  let ps x = x *. 1e12 in
  let err est ref_v = 100.0 *. (est -. ref_v) /. ref_v in
  Printf.printf "\n%-22s %10s %10s\n" "method" "-3s (ps)" "+3s (ps)";
  Printf.printf "%-22s %10.1f %10.1f   (golden, %.1fs)\n" "MC (path)"
    (ps (mc.Path_mc.quantile (-3)))
    (ps (mc.Path_mc.quantile 3))
    mc_time;
  Printf.printf "%-22s %10s %10.1f   (err %+.1f%%)\n" "PrimeTime-like +3s" "-"
    (ps pt3)
    (err pt3 (mc.Path_mc.quantile 3));
  Printf.printf "%-22s %10s %10.1f   (err %+.1f%%)\n" "Correction-based" "-"
    (ps corr3)
    (err corr3 (mc.Path_mc.quantile 3));
  Printf.printf "%-22s %10.1f %10.1f   (err %+.1f%% / %+.1f%%, %.3fs)\n"
    "N-sigma (ours)" (ps ours_m3) (ps ours_p3)
    (err ours_m3 (mc.Path_mc.quantile (-3)))
    (err ours_p3 (mc.Path_mc.quantile 3))
    model_time;
  Printf.printf "\nspeedup over path MC: %.0fx\n"
    (mc_time /. Float.max 1e-6 model_time)
