(* The Fig. 7/8 scenario: wire delay distributions under process
   variation, the Elmore gap, and how driver/load cell strengths shape
   the wire's variability — the interaction the paper calibrates with
   the X_FI / X_FO coefficients.

   Run with:  dune exec examples/wire_calibration.exe *)

module T = Nsigma_process.Technology
module Variation = Nsigma_process.Variation
module Cell = Nsigma_liberty.Cell
module Rctree = Nsigma_rcnet.Rctree
module Elmore = Nsigma_rcnet.Elmore
module Wire_gen = Nsigma_rcnet.Wire_gen
module Rc_sim = Nsigma_spice.Rc_sim
module Rng = Nsigma_stats.Rng
module Moments = Nsigma_stats.Moments
module Quantile = Nsigma_stats.Quantile

let tech = T.with_vdd T.default_28nm 0.6

(* MC over a fixed RC tree with a given driver/load pair; the load pin
   cap carries a small Pelgrom-style deviate of its own. *)
let wire_mc ~n ~seed ~tree ~driver ~load =
  let g = Rng.create ~seed in
  let tap = tree.Rctree.taps.(0) in
  let load_cap_nom = Cell.input_cap tech load in
  let cap_sigma =
    T.sigma_beta_local tech
      ~width:(float_of_int load.Cell.strength *. tech.T.width_n)
  in
  let out = ref [] in
  for _ = 1 to n do
    let sample = Variation.draw tech g in
    let arc = Cell.arc tech sample driver ~output_edge:`Rise in
    let tree_v = Wire_gen.vary tech sample tree in
    let load_cap =
      load_cap_nom *. (1.0 +. Variation.local_relative sample ~sigma:cap_sigma)
    in
    match
      Rc_sim.simulate ~steps:200 tech ~driver:arc ~tree:tree_v
        ~load_caps:[ (tap, load_cap) ] ~input_slew:10e-12
    with
    | r -> out := (Array.to_list r.Rc_sim.tap_delays |> List.assoc tap) :: !out
    | exception Failure _ -> ()
  done;
  Array.of_list !out

let () =
  let tree = Wire_gen.point_to_point tech ~length_um:120.0 ~segments:8 in
  let tap = tree.Rctree.taps.(0) in

  (* --- Fig. 7: Elmore vs the SPICE distribution --- *)
  let driver = Cell.make Cell.Inv ~strength:4 in
  let load = Cell.make Cell.Inv ~strength:4 in
  let loaded = Rctree.add_cap tree tap (Cell.input_cap tech load) in
  let elmore = Elmore.delay_at loaded tap in
  let delays = wire_mc ~n:3000 ~seed:77 ~tree ~driver ~load in
  let s = Moments.summary_of_array delays in
  Printf.printf "=== Fig. 7: Elmore vs transient MC (120um net, FO4 INV) ===\n";
  Printf.printf "Elmore      : %6.2f ps\n" (elmore *. 1e12);
  Printf.printf "MC mean     : %6.2f ps\n" (s.Moments.mean *. 1e12);
  Printf.printf "MC +3sigma  : %6.2f ps (%.0f%% above Elmore)\n\n"
    (Quantile.empirical_sigma_level delays 3 *. 1e12)
    (100.0 *. ((Quantile.empirical_sigma_level delays 3 /. elmore) -. 1.0));

  (* --- Fig. 8: strength sweep --- *)
  Printf.printf
    "=== Fig. 8: wire delay distribution vs driver/load strength ===\n";
  Printf.printf "%8s %8s | %9s %9s %10s\n" "driver" "load" "mu(ps)" "sig(ps)"
    "sig/mu(%)";
  List.iter
    (fun (ds, ls) ->
      let driver = Cell.make Cell.Inv ~strength:ds in
      let load = Cell.make Cell.Inv ~strength:ls in
      let delays = wire_mc ~n:1500 ~seed:(100 + ds + (10 * ls)) ~tree ~driver ~load in
      let s = Moments.summary_of_array delays in
      Printf.printf "%8s %8s | %9.2f %9.2f %10.2f\n%!"
        (Printf.sprintf "INVX%d" ds)
        (Printf.sprintf "INVX%d" ls)
        (s.Moments.mean *. 1e12) (s.Moments.std *. 1e12)
        (100.0 *. s.Moments.std /. s.Moments.mean))
    [ (1, 1); (2, 1); (4, 1); (1, 2); (1, 4); (2, 2); (4, 4) ];

  Printf.printf
    "\nweaker driver -> larger mean AND larger relative spread; the X_FI\n";
  Printf.printf
    "coefficient of eq. (6) captures exactly this 1/sqrt(strength) trend.\n"
