(* The PULPino functional units: generate real arithmetic circuits
   (adder / subtractor / multiplier / divider), prove they compute, and
   time them with the N-sigma model vs the nominal timer — the right
   half of the paper's Table III.

   Run with:  dune exec examples/pulpino_units.exe  (reduced sizes)
              dune exec examples/pulpino_units.exe -- full  (paper sizes;
              slow: characterisation + large netlists). *)

module T = Nsigma_process.Technology
module Cell = Nsigma_liberty.Cell
module Library = Nsigma_liberty.Library
module Model = Nsigma.Model
module G = Nsigma_netlist.Generators
module N = Nsigma_netlist.Netlist
module Design = Nsigma_sta.Design
module Engine = Nsigma_sta.Engine
module Provider = Nsigma_sta.Provider

let to_bits v width = Array.init width (fun i -> (v lsr i) land 1 = 1)

let of_bits a =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) a;
  !v

let () =
  let full = Array.length Sys.argv > 1 && Sys.argv.(1) = "full" in
  let tech = T.with_vdd T.default_28nm 0.6 in
  let units =
    if full then
      [ ("ADD", G.kogge_stone_adder ~bits:184);
        ("SUB", G.subtractor ~bits:141);
        ("MUL", G.array_multiplier ~bits:90);
        ("DIV", G.array_divider ~dividend_bits:56 ~divisor_bits:48) ]
    else
      [ ("ADD", G.kogge_stone_adder ~bits:16);
        ("SUB", G.subtractor ~bits:16);
        ("MUL", G.array_multiplier ~bits:8);
        ("DIV", G.array_divider ~dividend_bits:12 ~divisor_bits:6) ]
  in

  (* Functional spot-checks on the small variants (the generators are the
     same code paths at any width). *)
  if not full then begin
    let add = List.assoc "ADD" units in
    let out = N.eval add (Array.append (to_bits 40000 16) (to_bits 12345 16)) in
    Printf.printf "ADD check: 40000 + 12345 = %d\n" (of_bits out);
    let mul = List.assoc "MUL" units in
    let out = N.eval mul (Array.append (to_bits 251 8) (to_bits 93 8)) in
    Printf.printf "MUL check: 251 * 93 = %d\n" (of_bits out);
    let div = List.assoc "DIV" units in
    let out = N.eval div (Array.append (to_bits 3000 12) (to_bits 37 6)) in
    Printf.printf "DIV check: 3000 / 37 = %d rem %d\n\n"
      (of_bits (Array.sub out 0 12))
      (of_bits (Array.sub out 12 6))
  end;

  let cells =
    List.concat_map
      (fun k ->
        List.map (fun s -> Cell.make k ~strength:s) Cell.standard_strengths)
      Cell.all_kinds
  in
  Printf.printf "loading / characterising library...\n%!";
  let library =
    Library.load_or_characterize ~n_mc:800 ~path:"/tmp/nsigma_example_lib.lvf"
      tech cells
  in
  let model = Model.build library in

  Printf.printf "\n%-5s %9s %8s %7s | %10s %10s %10s\n" "unit" "cells" "nets"
    "depth" "nominal" "-3s" "+3s";
  List.iter
    (fun (name, nl) ->
      let nl = G.size_for_fanout nl in
      let design = Design.attach_parasitics tech nl in
      let nominal =
        Engine.circuit_delay (Engine.analyze tech (Provider.nominal library) design)
      in
      let m3 = Model.path_quantile model design ~sigma:(-3) in
      let p3 = Model.path_quantile model design ~sigma:3 in
      Printf.printf "%-5s %9d %8d %7d | %8.1fps %8.1fps %8.1fps\n%!" name
        (N.n_cells nl) nl.N.n_nets (N.logic_depth nl) (nominal *. 1e12)
        (m3 *. 1e12) (p3 *. 1e12))
    units
